package xsketch

import (
	"fmt"
	"strings"
)

// Stats breaks a synopsis down by component, mirroring the paper's storage
// discussion: structural summary (nodes + edges with stability bits) vs
// distribution information (edge histograms, value summaries).
type Stats struct {
	Nodes int
	Edges int
	// BStableEdges / FStableEdges count edges with each stability flag.
	BStableEdges, FStableEdges int
	// EdgeHistBuckets is the total bucket count across edge histograms;
	// EdgeHistDims the total dimensionality (scope edges + value dims).
	EdgeHistBuckets, EdgeHistDims int
	// ValueDims is the number of extended-histogram value dimensions.
	ValueDims int
	// ValueSummaries / ValueUnits count per-node value summaries and their
	// total stored units.
	ValueSummaries, ValueUnits int
	// StructureBytes / HistogramBytes / ValueBytes decompose SizeBytes.
	StructureBytes, HistogramBytes, ValueBytes int
	// TotalBytes is the full stored size.
	TotalBytes int
}

// Stats computes the current breakdown.
func (sk *Sketch) Stats() Stats {
	var st Stats
	m := sk.Cfg.SizeModel
	st.Nodes = sk.Syn.NumNodes()
	st.Edges = sk.Syn.NumEdges()
	for _, e := range sk.Syn.Edges() {
		if e.BStable {
			st.BStableEdges++
		}
		if e.FStable {
			st.FStableEdges++
		}
	}
	st.StructureBytes = m.StructureBytes(sk.Syn)
	for _, s := range sk.Summaries {
		dims := len(s.Scope) + len(s.ValueDims)
		st.EdgeHistDims += dims
		st.ValueDims += len(s.ValueDims)
		st.HistogramBytes += len(s.Scope) * m.BucketDimBytes
		for _, vd := range s.ValueDims {
			st.HistogramBytes += m.BucketDimBytes + len(vd.Bounds)*m.BucketDimBytes
		}
		if s.Hist != nil {
			st.EdgeHistBuckets += s.Hist.NumBuckets()
			st.HistogramBytes += s.Hist.NumBuckets() * m.BucketBytes(dims)
		}
		if s.VHist != nil {
			st.ValueSummaries++
			st.ValueUnits += s.VHist.SizeUnits()
			st.ValueBytes += s.VHist.SizeUnits() * (2*m.BucketDimBytes + m.BucketFreqBytes)
		}
	}
	st.TotalBytes = st.StructureBytes + st.HistogramBytes + st.ValueBytes
	return st
}

// String renders the breakdown as a short multi-line report.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes %d, edges %d (%d B-stable, %d F-stable)\n",
		st.Nodes, st.Edges, st.BStableEdges, st.FStableEdges)
	fmt.Fprintf(&b, "edge histograms: %d buckets over %d dims (%d value dims)\n",
		st.EdgeHistBuckets, st.EdgeHistDims, st.ValueDims)
	fmt.Fprintf(&b, "value summaries: %d with %d units\n", st.ValueSummaries, st.ValueUnits)
	fmt.Fprintf(&b, "size: %d B = %d structure + %d histograms + %d values",
		st.TotalBytes, st.StructureBytes, st.HistogramBytes, st.ValueBytes)
	return b.String()
}

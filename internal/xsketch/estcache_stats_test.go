package xsketch

import (
	"sync"
	"testing"

	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// TestEstimatorStatsGeneration pins the mutation-epoch semantics: the
// generation starts at zero, is always even in a snapshot, and advances by
// exactly two per invalidation.
func TestEstimatorStatsGeneration(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	g0 := sk.EstimatorStats().Generation
	if g0%2 != 0 {
		t.Fatalf("initial generation %d is odd", g0)
	}
	sk.InvalidateEstimatorCache()
	g1 := sk.EstimatorStats().Generation
	if g1 != g0+2 {
		t.Fatalf("generation after one invalidation = %d, want %d", g1, g0+2)
	}
	if !sk.SetBuckets(sk.Syn.NodeOf(sk.Syn.Doc.Root()), 2) {
		t.Fatal("SetBuckets on root synopsis node failed")
	}
	if g2 := sk.EstimatorStats().Generation; g2 <= g1 || g2%2 != 0 {
		t.Fatalf("generation after SetBuckets = %d, want even > %d", g2, g1)
	}
}

// TestEstimatorStatsSubClamps asserts Sub never produces a wrapped uint64:
// deltas against a newer (or foreign) snapshot clamp to zero, and the
// newer generation is carried through.
func TestEstimatorStatsSubClamps(t *testing.T) {
	cur := EstimatorStats{Hits: 5, Misses: 2, Evictions: 1, Generation: 4}
	prev := EstimatorStats{Hits: 9, Misses: 1, Evictions: 3, Generation: 2}
	d := cur.Sub(prev)
	if d.Hits != 0 || d.Misses != 1 || d.Evictions != 0 {
		t.Fatalf("clamped delta = %+v", d)
	}
	if d.Generation != 4 {
		t.Fatalf("delta generation = %d, want the newer snapshot's 4", d.Generation)
	}
}

// TestEstimatorStatsRaceStress is the satellite-3 regression test: stats
// pollers must read consistent, monotonic snapshots while estimation runs
// and while the sketch is mutated via RebuildNode. Phase one races
// estimators against snapshotters; phase two races a mutator (which holds
// the required exclusive access versus estimation, but not versus pollers)
// against snapshotters. Meaningful under -race; the invariants below fail
// on torn generation/eviction pairings even without it.
func TestEstimatorStatsRaceStress(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	view := sk.EstimatorCache()
	q := twig.MustParse("t0 in author, t1 in t0//title, t2 in t0/name")

	poll := func(stop <-chan struct{}, wg *sync.WaitGroup) {
		defer wg.Done()
		prev := view.Snapshot()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := view.Snapshot()
			if st.Generation%2 != 0 {
				t.Errorf("snapshot saw odd generation %d", st.Generation)
				return
			}
			if st.Hits < prev.Hits || st.Misses < prev.Misses || st.Evictions < prev.Evictions || st.Generation < prev.Generation {
				t.Errorf("counters went backwards: %+v -> %+v", prev, st)
				return
			}
			d := st.Sub(prev)
			if d.Hits > st.Hits || d.Misses > st.Misses {
				t.Errorf("delta exceeds cumulative total: %+v vs %+v", d, st)
				return
			}
			prev = st
		}
	}

	// Phase 1: concurrent estimation vs. pollers.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go poll(stop, &wg)
	}
	var est sync.WaitGroup
	for i := 0; i < 4; i++ {
		est.Add(1)
		go func() {
			defer est.Done()
			for j := 0; j < 50; j++ {
				sk.EstimateQuery(q)
			}
		}()
	}
	est.Wait()
	close(stop)
	wg.Wait()

	// Phase 2: mutation (exclusive of estimation, concurrent with pollers).
	stop = make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go poll(stop, &wg)
	}
	root := sk.Syn.NodeOf(sk.Syn.Doc.Root())
	for j := 0; j < 200; j++ {
		sk.EstimateQuery(q) // repopulate so invalidation has entries to evict
		sk.RebuildNode(root)
	}
	close(stop)
	wg.Wait()
}

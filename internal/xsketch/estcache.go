package xsketch

import (
	"sync"
	"sync/atomic"

	"xsketch/internal/graphsyn"
	"xsketch/internal/pathexpr"
	"xsketch/internal/trace"
)

// This file implements the per-sketch estimation cache: memo tables for the
// structural sub-results that EstimateQuery recomputes constantly —
// expandStep realizations, estimated edge counts, and existsFraction
// probabilities. All three are pure functions of the synopsis and the
// stored summaries, so memoized values are bit-identical to recomputed
// ones and estimation stays deterministic under any mix of cache hits,
// misses and worker interleavings.
//
// Concurrency contract: any number of goroutines may estimate against one
// sketch concurrently (EstimateQuery, EstimateBatch, EstimatorStats).
// Mutating the sketch — refinements, RebuildNode, AddValueDim — requires
// exclusive access, exactly as it did before the cache existed; every
// rebuild path invalidates the cache so stale sub-results never leak into
// post-refinement estimates.

// EstimatorStats reports the estimation cache counters of a sketch.
// Hits and Misses count memo-table lookups; Evictions counts entries
// dropped by cache invalidation (every synopsis refinement invalidates).
// All counters are cumulative over the sketch's lifetime and are zero when
// Config.DisableEstimatorCache is set. Generation is the sketch's mutation
// epoch: it advances by two on every invalidation (RebuildNode, SetBuckets,
// AddScopeEdge, ...), is always even in a snapshot, and tags compiled query
// plans so stale plans can never survive a mutation (see planner.go).
type EstimatorStats struct {
	Hits, Misses, Evictions uint64
	Generation              uint64
}

// estEngine is the per-sketch estimation cache state: an atomically
// swappable memo table (swapped out wholesale on invalidation) plus
// lifetime counters that survive invalidation. gen is a seqlock-style
// generation counter: odd while an invalidation is in flight, advanced to
// the next even value once the swap and its eviction accounting are done.
// Snapshot readers retry around odd values, so a snapshot can never pair a
// pre-invalidation counter with a post-invalidation one.
type estEngine struct {
	cache                   atomic.Pointer[estimatorCache]
	hits, misses, evictions atomic.Uint64
	gen                     atomic.Uint64
}

// expandKey identifies one expandStep realization set. expandStep depends
// only on the context node and the step's axis and label (predicates are
// applied later, per realization).
type expandKey struct {
	ctx   graphsyn.NodeID
	axis  pathexpr.Axis
	label string
}

// edgeKey identifies one estEdgeCount lookup.
type edgeKey struct{ u, v graphsyn.NodeID }

// existsKey identifies one existsFraction result: the context node plus a
// canonical rendering of the remaining branch steps (the parseable path
// syntax, which is collision-free).
type existsKey struct {
	node  graphsyn.NodeID
	steps string
}

// estimatorCache holds the three memo tables behind one RWMutex. Lookups
// take the read lock; inserts take the write lock. Two goroutines missing
// on the same key both compute the (identical) value and the second store
// overwrites the first — wasted work, never wrong results.
type estimatorCache struct {
	mu     sync.RWMutex
	expand map[expandKey][][]graphsyn.NodeID
	edge   map[edgeKey]float64
	exists map[existsKey]float64
}

func newEstimatorCache() *estimatorCache {
	return &estimatorCache{
		expand: make(map[expandKey][][]graphsyn.NodeID),
		edge:   make(map[edgeKey]float64),
		exists: make(map[existsKey]float64),
	}
}

// size returns the total entry count (used to account evictions).
func (c *estimatorCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.expand) + len(c.edge) + len(c.exists)
}

// estCache returns the sketch's live memo table, creating it on first use.
func (sk *Sketch) estCache() *estimatorCache {
	if c := sk.est.cache.Load(); c != nil {
		return c
	}
	c := newEstimatorCache()
	if sk.est.cache.CompareAndSwap(nil, c) {
		return c
	}
	return sk.est.cache.Load()
}

// InvalidateEstimatorCache drops every memoized estimation sub-result.
// All rebuild paths call it automatically; callers that mutate the synopsis
// or the summaries directly (without RebuildNode) must call it themselves.
func (sk *Sketch) InvalidateEstimatorCache() {
	sk.est.gen.Add(1) // odd: invalidation in flight, snapshots retry
	old := sk.est.cache.Swap(nil)
	if old != nil {
		sk.est.evictions.Add(uint64(old.size()))
	}
	sk.est.gen.Add(1) // even: next epoch, eviction accounting visible
}

// EstimatorStats returns the cumulative estimation cache counters. It is
// equivalent to EstimatorCache().Snapshot(); both are safe to call
// concurrently with estimation.
func (sk *Sketch) EstimatorStats() EstimatorStats {
	return sk.EstimatorCache().Snapshot()
}

// An EstimatorCacheView is a read-only handle over a sketch's live
// estimation-cache counters. Pollers that sample stats while estimation
// runs — the xserve /metrics endpoint scrapes on every collection — hold a
// view instead of the *Sketch, making the read-only intent explicit and
// keeping the sketch's mutating surface out of reach.
type EstimatorCacheView struct {
	eng *estEngine
}

// EstimatorCache returns a view over the sketch's estimation-cache
// counters for concurrent polling.
func (sk *Sketch) EstimatorCache() EstimatorCacheView {
	return EstimatorCacheView{eng: &sk.est}
}

// Snapshot samples the counters consistently with respect to cache
// invalidation: the generation counter is read before and after the
// individual loads, and the sample is retried while an invalidation is in
// flight (odd generation) or completed in between (generation changed).
// A snapshot therefore never mixes a pre-RebuildNode counter with a
// post-RebuildNode one — previously, a poller racing a rebuild could see
// the eviction total without the hits/misses that produced it, yielding
// torn interval deltas. Concurrent *estimates* may still land between two
// loads within one generation; that only shifts work between adjacent
// intervals and can never make a delta go backwards (counters are
// monotonic). This is the race-safe way to read stats while estimation
// runs; reading the engine's fields directly is not possible outside this
// package by design.
func (v EstimatorCacheView) Snapshot() EstimatorStats {
	for {
		g := v.eng.gen.Load()
		st := EstimatorStats{
			Hits:       v.eng.hits.Load(),
			Misses:     v.eng.misses.Load(),
			Evictions:  v.eng.evictions.Load(),
			Generation: g,
		}
		if g&1 == 0 && v.eng.gen.Load() == g {
			return st
		}
		// An invalidation was in flight; invalidations are short (one
		// pointer swap plus a size read), so the retry converges quickly.
	}
}

// Lookups returns the total memo-table lookups (hits + misses).
func (st EstimatorStats) Lookups() uint64 { return st.Hits + st.Misses }

// HitRate returns Hits / (Hits + Misses), or 0 when nothing was looked up.
func (st EstimatorStats) HitRate() float64 {
	n := st.Lookups()
	if n == 0 {
		return 0
	}
	return float64(st.Hits) / float64(n)
}

// Sub returns the counter deltas st - prev, for pollers converting
// cumulative counters into per-interval rates. Deltas are clamped at zero:
// with consistent snapshots the counters are monotonic, so a would-be
// negative delta can only mean prev came from a different sketch (or a
// hand-built value) and a huge wrapped uint64 would be strictly worse than
// zero. The Generation of the newer snapshot is carried through so callers
// can tell whether the interval crossed a mutation.
func (st EstimatorStats) Sub(prev EstimatorStats) EstimatorStats {
	return EstimatorStats{
		Hits:       monoDelta(st.Hits, prev.Hits),
		Misses:     monoDelta(st.Misses, prev.Misses),
		Evictions:  monoDelta(st.Evictions, prev.Evictions),
		Generation: st.Generation,
	}
}

// monoDelta is cur - prev clamped at zero for monotonic counters.
func monoDelta(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// expandStep enumerates the synopsis-node sequences realizing one step from
// ctx, memoized per (ctx, axis, label). The cached slices are shared and
// must not be mutated by callers.
func (sk *Sketch) expandStep(ctx graphsyn.NodeID, step *pathexpr.Step) [][]graphsyn.NodeID {
	v, _ := sk.expandStepOutcome(ctx, step)
	return v
}

// expandStepOutcome is expandStep plus the estimator-cache outcome
// (trace.CacheHit / CacheMiss / CacheOff) for trace recording.
func (sk *Sketch) expandStepOutcome(ctx graphsyn.NodeID, step *pathexpr.Step) ([][]graphsyn.NodeID, string) {
	if sk.Cfg.DisableEstimatorCache {
		return sk.expandStepUncached(ctx, step), trace.CacheOff
	}
	c := sk.estCache()
	k := expandKey{ctx: ctx, axis: step.Axis, label: step.Label}
	c.mu.RLock()
	v, ok := c.expand[k]
	c.mu.RUnlock()
	if ok {
		sk.est.hits.Add(1)
		return v, trace.CacheHit
	}
	sk.est.misses.Add(1)
	v = sk.expandStepUncached(ctx, step)
	c.mu.Lock()
	c.expand[k] = v
	c.mu.Unlock()
	return v, trace.CacheMiss
}

// estEdgeCount estimates |u -> v| (see estEdgeCountUncached), memoized per
// edge.
func (sk *Sketch) estEdgeCount(u, v graphsyn.NodeID) float64 {
	val, _ := sk.estEdgeCountOutcome(u, v)
	return val
}

// estEdgeCountOutcome is estEdgeCount plus the estimator-cache outcome for
// trace recording.
func (sk *Sketch) estEdgeCountOutcome(u, v graphsyn.NodeID) (float64, string) {
	if sk.Cfg.DisableEstimatorCache {
		return sk.estEdgeCountUncached(u, v), trace.CacheOff
	}
	c := sk.estCache()
	k := edgeKey{u, v}
	c.mu.RLock()
	val, ok := c.edge[k]
	c.mu.RUnlock()
	if ok {
		sk.est.hits.Add(1)
		return val, trace.CacheHit
	}
	sk.est.misses.Add(1)
	val = sk.estEdgeCountUncached(u, v)
	c.mu.Lock()
	c.edge[k] = val
	c.mu.Unlock()
	return val, trace.CacheMiss
}

// maxExistsDepth bounds the existsFraction recursion. The recursion already
// terminates structurally — every recursive call strictly shrinks the
// remaining step list, even over cyclic synopsis graphs, because
// expandStep returns bounded simple paths — so the guard is purely
// defensive against pathological hand-built queries.
const maxExistsDepth = 64

// stepsSig renders a step list as its canonical parseable path syntax,
// which is injective over step lists and therefore a collision-free cache
// key component.
func stepsSig(steps []*pathexpr.Step) string {
	return (&pathexpr.Path{Steps: steps}).String()
}

// existsFraction estimates P(an element of node id has >= 1 match of the
// remaining branch steps), memoized per (node, canonical steps). The
// second return reports whether the value was computed entirely below the
// recursion-depth guard; guarded (non-clean) values are never cached, so
// cached contents are independent of evaluation order.
func (sk *Sketch) existsFraction(id graphsyn.NodeID, steps []*pathexpr.Step, depth int) (float64, bool) {
	v, clean, _ := sk.existsFractionOutcome(id, steps, depth)
	return v, clean
}

// existsFractionOutcome is existsFraction plus the estimator-cache outcome
// for trace recording.
func (sk *Sketch) existsFractionOutcome(id graphsyn.NodeID, steps []*pathexpr.Step, depth int) (float64, bool, string) {
	if len(steps) == 0 {
		return 1, true, trace.CacheOff
	}
	if depth > maxExistsDepth {
		return 0, false, trace.CacheOff
	}
	if sk.Cfg.DisableEstimatorCache {
		v, clean := sk.existsFractionUncached(id, steps, depth)
		return v, clean, trace.CacheOff
	}
	c := sk.estCache()
	k := existsKey{node: id, steps: stepsSig(steps)}
	c.mu.RLock()
	v, ok := c.exists[k]
	c.mu.RUnlock()
	if ok {
		sk.est.hits.Add(1)
		return v, true, trace.CacheHit
	}
	sk.est.misses.Add(1)
	v, clean := sk.existsFractionUncached(id, steps, depth)
	if clean {
		c.mu.Lock()
		c.exists[k] = v
		c.mu.Unlock()
	}
	return v, clean, trace.CacheMiss
}

package plan

import (
	"fmt"
	"sync"
	"testing"
)

func prog(canonical string, gen uint64) *Program {
	p := &Program{Canonical: canonical, Generation: gen}
	p.Finalize()
	return p
}

// TestCacheLookupInsert pins the basic key structure: canonical insert,
// alias hit, canonical promote with alias registration, and hit/miss
// accounting (hits = served lookups, misses = compilations).
func TestCacheLookupInsert(t *testing.T) {
	c := NewCache(4)
	if c.Lookup("q1", 0) != nil {
		t.Fatal("empty cache returned a program")
	}
	p := prog("for t0 in //a", 0)
	c.Insert(p, "t0 in //a")
	if got := c.Lookup("t0 in //a", 0); got != p {
		t.Fatal("alias lookup missed after insert")
	}
	if got := c.Promote("for t0 in //a", "for  t0 in //a-normalized", 0); got != p {
		t.Fatal("canonical promote missed")
	}
	if got := c.Lookup("for  t0 in //a-normalized", 0); got != p {
		t.Fatal("promoted alias did not register")
	}
	// The canonical spelling never gets an alias slot, so Lookup must fall
	// back to the canonical map — otherwise a canonically spelled query
	// reparses on every call (the regression behind the zero-alloc gate).
	if got := c.Lookup("for t0 in //a", 0); got != p {
		t.Fatal("canonical-text lookup missed")
	}
	st := c.Stats()
	if st.Hits != 4 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want 4 hits / 1 miss / size 1", st)
	}
}

// TestCacheGenerationInvalidation asserts a generation mismatch evicts the
// stale entry on either lookup path and never returns it.
func TestCacheGenerationInvalidation(t *testing.T) {
	c := NewCache(4)
	c.Insert(prog("q", 0), "alias-q")
	if c.Lookup("alias-q", 2) != nil {
		t.Fatal("stale entry returned via alias")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not evicted, len = %d", c.Len())
	}
	c.Insert(prog("q", 2), "")
	if c.Promote("q", "", 4) != nil {
		t.Fatal("stale entry returned via canonical form")
	}
	if st := c.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	// A fresh entry at the new generation works again.
	p := prog("q", 4)
	c.Insert(p, "alias-q")
	if c.Lookup("alias-q", 4) != p {
		t.Fatal("fresh entry missed")
	}
}

// TestCacheLRUEviction asserts capacity eviction drops the least recently
// used entry and its aliases.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Insert(prog("a", 0), "alias-a")
	c.Insert(prog("b", 0), "alias-b")
	if c.Lookup("alias-a", 0) == nil { // touch a so b is LRU
		t.Fatal("a missed")
	}
	c.Insert(prog("c", 0), "alias-c")
	if c.Lookup("alias-b", 0) != nil {
		t.Fatal("LRU entry b survived capacity eviction")
	}
	if c.Lookup("alias-a", 0) == nil || c.Lookup("alias-c", 0) == nil {
		t.Fatal("recently used entries were evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / size 2", st)
	}
}

// TestCacheAliasBound asserts per-entry aliases are capped: unbounded
// spellings of one query must not grow the alias map without bound.
func TestCacheAliasBound(t *testing.T) {
	c := NewCache(2)
	c.Insert(prog("q", 0), "")
	for i := 0; i < 5*aliasLimit; i++ {
		if c.Promote("q", fmt.Sprintf("spelling-%d", i), 0) == nil {
			t.Fatal("canonical promote missed")
		}
	}
	c.mu.Lock()
	aliases := len(c.aliases)
	c.mu.Unlock()
	if aliases > aliasLimit {
		t.Fatalf("alias map grew to %d entries, cap is %d", aliases, aliasLimit)
	}
	// Early spellings (within the cap) still hit; late ones fall back to
	// the canonical path but are never wrong.
	if c.Lookup("spelling-0", 0) == nil {
		t.Fatal("capped alias lost")
	}
	if c.Lookup(fmt.Sprintf("spelling-%d", 5*aliasLimit-1), 0) != nil {
		t.Fatal("over-cap spelling unexpectedly aliased")
	}
}

// TestCacheReplaceCleansAliases asserts replacing a canonical entry drops
// the old entry's aliases so they cannot resolve to a retired program.
func TestCacheReplaceCleansAliases(t *testing.T) {
	c := NewCache(4)
	c.Insert(prog("q", 0), "old-spelling")
	p2 := prog("q", 2)
	c.Insert(p2, "new-spelling")
	if got := c.Lookup("old-spelling", 2); got != nil {
		t.Fatal("old alias survived canonical replacement")
	}
	if got := c.Lookup("new-spelling", 2); got != p2 {
		t.Fatal("replacement entry missed")
	}
}

// TestCacheConcurrent hammers the cache from many goroutines (meaningful
// under -race): mixed lookups, inserts and generation bumps must never
// return a program whose generation mismatches the request.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				gen := uint64(i%3) * 2
				key := fmt.Sprintf("q%d", i%12)
				if p := c.Lookup(key, gen); p != nil && p.Generation != gen {
					t.Errorf("lookup returned generation %d for gen %d", p.Generation, gen)
					return
				}
				c.Insert(prog(key, gen), key)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

// Package plan holds compiled query plans for the Twig XSKETCH estimator
// and the bounded LRU cache that stores them per sketch.
//
// EstimateQuery recomputes the maximal-twig expansion, the embedding
// enumeration and the TREEPARSE decomposition (paper Section 4) on every
// call, although all of it depends only on the query shape and the sketch
// state — not on any per-call input. A Program freezes that work once: it
// holds the deduplicated embedding list with, per embedding node, the
// precomputed TREEPARSE split (covered/uncovered children, ancestor-
// assigned dimensions), the constant factors (value/existence fractions,
// Forward Uniformity count products), the interned tag table, and a direct
// reference to the node's edge histogram. Executing a Program then performs
// only histogram lookups and float multiplications — in the identical
// order as the interpreter, so planned estimates are bit-identical to
// EstimateQuery (asserted in internal/xsketch's planner tests).
//
// The runtime assignment map of the interpreter (ancestor bucket choices
// keyed by scope edge) is compiled away into slots: a node evaluated under
// bucket enumeration binds each expanded dimension to a fixed slot index,
// and every descendant that conditions on that dimension reads the slot.
// Scratch state (slots, conditioning values, histogram match buffers) lives
// in a per-Program sync.Pool, so steady-state execution allocates nothing
// (asserted via testing.AllocsPerRun).
//
// Cache is a bounded LRU over Programs keyed by the query's canonical form
// (twig.Query.String), with a bounded set of normalized-text aliases per
// entry so equivalent spellings share one plan. Every Program carries the
// sketch generation it was compiled under; lookups discard entries whose
// generation no longer matches, which makes RebuildNode-style mutations
// invalidate plans without the cache ever observing the mutation directly.
//
// The package sits below internal/xsketch (which owns the compiler) and
// depends only on the query/histogram layers, keeping the dependency
// direction acyclic.
package plan

package plan

import "sync"

// aliasLimit bounds the normalized-text aliases retained per cache entry.
// Aliases exist so common alternative spellings (extra whitespace, a "for"
// keyword) hit without reparsing; a query with unboundedly many spellings
// must not let the alias map grow without bound.
const aliasLimit = 8

// Stats reports the cumulative counters of a plan cache. Hits counts
// planned lookups served from the cache (by either key), Misses counts
// compilations, and Evictions counts entries dropped for capacity or
// staleness. Size is the current entry count.
type Stats struct {
	Hits, Misses, Evictions uint64
	Size                    int
}

// entry is one cached program with its LRU links and alias bookkeeping.
type entry struct {
	prog       *Program
	aliases    []string
	prev, next *entry
}

// Cache is a bounded LRU of compiled programs, keyed by the query's
// canonical form with a bounded set of normalized-text aliases per entry.
// Entries are tagged with the sketch generation they were compiled under;
// a lookup that finds a stale entry evicts it and reports a miss, so no
// plan compiled before a sketch mutation can ever be executed after it.
// All methods are safe for concurrent use, and the lookup path performs no
// allocations (map reads, pointer splices, counter increments).
type Cache struct {
	mu         sync.Mutex
	cap        int
	entries    map[string]*entry // canonical form -> entry
	aliases    map[string]*entry // normalized text -> entry
	head, tail *entry            // LRU order, head = most recent
	hits       uint64
	misses     uint64
	evictions  uint64
}

// NewCache returns an empty cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[string]*entry),
		aliases: make(map[string]*entry),
	}
}

// Lookup returns the program cached under the normalized query text, or
// nil. The text is checked against the alias map and then the canonical
// map — a canonically spelled query never gets an alias slot (addAlias
// refuses it), so the fallback is what lets it hit without reparsing. A
// generation mismatch evicts the stale entry and misses; a hit refreshes
// LRU order and counts toward Stats.Hits. Failed lookups are not counted
// as misses here — the caller either promotes the canonical form (another
// hit path) or compiles, and Insert counts the compilation.
//
//lint:hotpath cache-hit lookup, zero allocations asserted by TestPlannedZeroAllocsOnHit
func (c *Cache) Lookup(text string, gen uint64) *Program {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.aliases[text]
	if e == nil {
		e = c.entries[text]
	}
	return c.take(e, gen)
}

// Promote returns the program cached under the canonical form, or nil,
// registering text as an additional alias on a hit. It is the second-
// chance lookup after an alias miss and a parse: a new spelling of an
// already-planned query hits here and shares the existing plan.
func (c *Cache) Promote(canonical, text string, gen uint64) *Program {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[canonical]
	p := c.take(e, gen)
	if p != nil && text != "" {
		c.addAlias(e, text)
	}
	return p
}

// Insert stores a freshly compiled program under its canonical form,
// optionally registering one normalized-text alias, and counts the
// compilation as a miss. Inserting over an existing canonical entry
// replaces it (the recompile-after-mutation path); capacity overflow
// evicts least-recently-used entries.
func (c *Cache) Insert(p *Program, text string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses++
	if old := c.entries[p.Canonical]; old != nil {
		c.remove(old)
	}
	e := &entry{prog: p}
	c.entries[p.Canonical] = e
	c.pushFront(e)
	if text != "" {
		c.addAlias(e, text)
	}
	for len(c.entries) > c.cap {
		c.remove(c.tail)
		c.evictions++
	}
}

// Stats samples the cumulative counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Size: len(c.entries)}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// take validates an entry against the current generation: a fresh entry is
// moved to the LRU front and counted as a hit; a stale one is evicted.
//
//lint:hotpath shared by Lookup and Promote on the hit path
func (c *Cache) take(e *entry, gen uint64) *Program {
	if e == nil {
		return nil
	}
	if e.prog.Generation != gen {
		c.remove(e)
		c.evictions++
		return nil
	}
	c.moveFront(e)
	c.hits++
	return e.prog
}

// addAlias registers text as an alias of e, bounded by aliasLimit. The
// canonical form itself never needs an alias slot.
func (c *Cache) addAlias(e *entry, text string) {
	if text == e.prog.Canonical || len(e.aliases) >= aliasLimit {
		return
	}
	if c.aliases[text] == e {
		return
	}
	c.aliases[text] = e
	e.aliases = append(e.aliases, text)
}

// remove unlinks an entry and drops its keys and aliases.
func (c *Cache) remove(e *entry) {
	delete(c.entries, e.prog.Canonical)
	for _, a := range e.aliases {
		if c.aliases[a] == e {
			delete(c.aliases, a)
		}
	}
	c.unlink(e)
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) pushFront(e *entry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) moveFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

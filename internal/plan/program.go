package plan

import (
	"context"
	"fmt"
	"sync"

	"xsketch/internal/histogram"
	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
)

// Mode classifies how a compiled node is executed. The compiler resolves
// the interpreter's runtime branching (pruned? leaf? does any descendant
// condition on this node's expanded dimensions?) once per plan, so the
// executor switches on a stored tag instead.
type Mode uint8

const (
	// ModeZero marks a node whose contribution is constant zero: a pruned
	// predicate factor, a zero Forward-Uniformity count product, or a
	// missing histogram where one is required.
	ModeZero Mode = iota
	// ModeLeaf marks a childless node without value-dimension uses; its
	// contribution is the constant predicate factor.
	ModeLeaf
	// ModeFactorized marks a node evaluated in the factorized form: one
	// conditional sum-product over the histogram times the children's own
	// contributions (no descendant conditions on this node's dimensions).
	ModeFactorized
	// ModeEnumerated marks a node that enumerates its histogram buckets,
	// binding expanded dimensions to slots for conditioned descendants and
	// applying value-dimension overlaps per bucket.
	ModeEnumerated
)

// Overlapper computes the fraction of a histogram bucket's value-dimension
// mass satisfying a predicate. It is implemented by xsketch.ValueDim; the
// indirection keeps this package below internal/xsketch.
type Overlapper interface {
	Overlap(coord float64, pred *pathexpr.ValuePred) float64
}

// Use is one value-dimension consumption at a node: a predicate whose
// selectivity is read off the extended histogram's value coordinate per
// enumerated bucket. CountDim, when >= 0, marks a branch-existence use
// whose per-bucket probability is min(1, count * overlap) over the branch
// edge's count dimension.
type Use struct {
	// Dim is the histogram dimension carrying the value coordinate.
	Dim int
	// Overlap evaluates the predicate against a bucket's value coordinate.
	Overlap Overlapper
	// Pred is the value predicate being consumed.
	Pred *pathexpr.ValuePred
	// CountDim is the count dimension of the branch edge, or -1 for a
	// plain (self or child) value predicate.
	CountDim int
}

// Node is one compiled embedding node. All fields are fixed at compile
// time; execution reads them together with the pooled Scratch.
type Node struct {
	// Syn is the underlying synopsis node (diagnostics only).
	Syn int
	// Index is the node's dense index within the Program, addressing its
	// per-node scratch (histogram match buffer).
	Index int
	// Mode selects the execution form.
	Mode Mode
	// Factor is the constant predicate factor: the product of the node's
	// independent value fraction and branch existence fractions, exactly
	// as the interpreter accumulates it.
	Factor float64
	// UncBase is the constant Forward-Uniformity product of average child
	// counts over the uncovered children.
	UncBase float64
	// Hist is the node's edge histogram (shared with the sketch summary;
	// histograms are immutable, and any rebuild that replaces them also
	// advances the sketch generation, retiring this plan).
	Hist *histogram.Histogram
	// CovDims lists the expanded (covered-child) histogram dimensions in
	// child order; it doubles as the sum-product dimension list in the
	// factorized form.
	CovDims []int
	// CovSlots, parallel to CovDims, gives the slot each expanded
	// dimension binds under bucket enumeration (ModeEnumerated only).
	CovSlots []int
	// DDims lists the histogram dimensions assigned by enumerating
	// ancestors (the TREEPARSE D_i set), in scope order.
	DDims []int
	// DSlots, parallel to DDims, gives the slot holding each assigned
	// value.
	DSlots []int
	// DOff is the node's offset into the scratch conditioning-value arena.
	DOff int
	// Uses are the node's value-dimension consumptions, in the
	// interpreter's evaluation order (self, branches, then children).
	Uses []Use
	// Covered are the compiled covered children, in child order.
	Covered []*Node
	// Uncovered are the compiled uncovered children, in child order.
	Uncovered []*Node
}

// Emb is one compiled embedding: the extent size of the virtual root times
// the root node's per-element contribution.
type Emb struct {
	// Base is the extent size of the embedding's root synopsis node.
	Base float64
	// Root is the compiled virtual-root node.
	Root *Node
}

// Tag is one interned query tag: a step label resolved to its document tag
// ID at compile time.
type Tag struct {
	// Label is the tag's query spelling.
	Label string
	// ID is the document's tag identifier, or -1 when the label does not
	// occur in the document (such steps expand to nothing).
	ID int
}

// Program is a compiled, executable form of one twig query against one
// sketch state. Programs are immutable after Finalize and safe for
// concurrent execution; all mutable state lives in pooled Scratch values.
type Program struct {
	// Canonical is the query's canonical rendering (twig.Query.String),
	// the primary plan-cache key.
	Canonical string
	// Query is the parsed twig the program was compiled from, kept so a
	// stale program can be recompiled without reparsing.
	Query *twig.Query
	// Generation is the sketch mutation epoch the program was compiled
	// under (EstimatorStats.Generation); a mismatch marks the program
	// stale.
	Generation uint64
	// Truncated reports that embedding enumeration hit the sketch's
	// MaxEmbeddings bound, exactly as EstimateQueryResult would report it.
	Truncated bool
	// Embeddings is the deduplicated compiled embedding list.
	Embeddings []Emb
	// Tags is the interned tag table of the query's step labels.
	Tags []Tag
	// NumNodes is the total compiled node count (scratch sizing).
	NumNodes int
	// NumSlots is the number of slot bindings (scratch sizing).
	NumSlots int
	// DValsLen is the size of the conditioning-value arena (scratch
	// sizing).
	DValsLen int

	pool sync.Pool
}

// Scratch is the per-execution mutable state of a Program: slot bindings,
// the conditioning-value arena, and per-node histogram match buffers that
// grow once and are retained across executions.
type Scratch struct {
	slots []float64
	dvals []float64
	bufs  [][]histogram.Bucket
}

// Finalize prepares the program for execution after compilation: it wires
// the scratch pool to the final sizing counters. The compiler must call it
// exactly once, before the first Estimate.
func (p *Program) Finalize() {
	p.pool.New = func() any {
		return &Scratch{
			slots: make([]float64, p.NumSlots),
			dvals: make([]float64, p.DValsLen),
			bufs:  make([][]histogram.Bucket, p.NumNodes),
		}
	}
}

// Estimate executes the program: the selectivity estimate plus the
// truncation flag, bit-identical to the interpreted estimate of the same
// query under the same sketch state.
func (p *Program) Estimate() (float64, bool) {
	v, truncated, _ := p.EstimateContext(context.Background())
	return v, truncated
}

// EstimateContext is Estimate with cooperative cancellation, checked
// between embeddings exactly like the interpreter's context-aware entry
// points. On error the partial value is discarded.
//
//lint:hotpath cache-hit execution path, zero allocations asserted by TestPlannedZeroAllocsOnHit
func (p *Program) EstimateContext(ctx context.Context) (float64, bool, error) {
	s := p.pool.Get().(*Scratch)
	total := 0.0
	for i := range p.Embeddings {
		if err := ctx.Err(); err != nil {
			p.pool.Put(s)
			return 0, false, err
		}
		em := &p.Embeddings[i]
		total += em.Base * p.exec(em.Root, s)
	}
	p.pool.Put(s)
	return total, p.Truncated, nil
}

// NumEmbeddings returns the compiled embedding count.
func (p *Program) NumEmbeddings() int { return len(p.Embeddings) }

// String summarizes the program for diagnostics.
func (p *Program) String() string {
	return fmt.Sprintf("plan{%q, %d embedding(s), %d node(s), %d tag(s), gen %d}",
		p.Canonical, len(p.Embeddings), p.NumNodes, len(p.Tags), p.Generation)
}

// exec evaluates one compiled node. It mirrors the interpreter's contrib
// (internal/xsketch/estimate.go) term for term — same multiplication
// order, same early zero returns — so the result is bit-identical.
//
//lint:hotpath per-node execution kernel under EstimateContext
func (p *Program) exec(n *Node, s *Scratch) float64 {
	switch n.Mode {
	case ModeZero:
		return 0
	case ModeLeaf:
		return n.Factor
	}
	dv := s.dvals[n.DOff : n.DOff+len(n.DDims)]
	for i, slot := range n.DSlots {
		dv[i] = s.slots[slot]
	}
	if n.Mode == ModeFactorized {
		part := 1.0
		if len(n.Covered) > 0 {
			v, buf := n.Hist.CondSumProductInto(s.bufs[n.Index], n.CovDims, n.DDims, dv)
			s.bufs[n.Index] = buf
			part = v
		}
		for _, c := range n.Covered {
			part *= p.exec(c, s)
			if part == 0 {
				return 0
			}
		}
		unc := n.UncBase
		for _, c := range n.Uncovered {
			unc *= p.exec(c, s)
		}
		return n.Factor * unc * part
	}

	// ModeEnumerated: iterate bucket choices, binding expanded dims to
	// slots for conditioned descendants.
	buckets, denom := n.Hist.MatchInto(s.bufs[n.Index], n.DDims, dv)
	if len(n.DDims) != 0 {
		// Retain the grown buffer; with no conditioning dims MatchInto
		// returned the histogram's own buckets, which must not be adopted.
		s.bufs[n.Index] = buckets
	}
	if denom == 0 {
		return 0
	}
	total := 0.0
	for bi := range buckets {
		b := &buckets[bi]
		w := b.Freq / denom
		for _, j := range n.CovDims {
			w *= b.Centroid[j]
		}
		for ui := range n.Uses {
			u := &n.Uses[ui]
			ov := u.Overlap.Overlap(b.Centroid[u.Dim], u.Pred)
			if u.CountDim >= 0 {
				cnt := b.Centroid[u.CountDim]
				pr := cnt * ov
				if pr > 1 {
					pr = 1
				}
				ov = pr
			}
			w *= ov
			if w == 0 {
				break
			}
		}
		if w == 0 {
			continue
		}
		for i, j := range n.CovDims {
			s.slots[n.CovSlots[i]] = b.Centroid[j]
		}
		for _, c := range n.Covered {
			w *= p.exec(c, s)
			if w == 0 {
				break
			}
		}
		if w != 0 {
			for _, c := range n.Uncovered {
				w *= p.exec(c, s)
				if w == 0 {
					break
				}
			}
		}
		total += w
	}
	return n.Factor * n.UncBase * total
}

// Bibliography: the paper's running example (Figures 1-6). This program
// walks through the whole pipeline on the Figure-1 document:
//
//  1. the binding tuples of the Figure-2 twig query (Example 2.1),
//  2. the label-split synopsis with its stability labels (Figure 3),
//  3. the edge distribution f_P of Example 3.1,
//  4. the Section-4 worked estimate s(T) = 10/3 using the histograms
//     H_A(p, n) and H_P(k, y, p) of Figure 6(b).
package main

import (
	"fmt"
	"log"

	"xsketch"
	"xsketch/internal/xmltree"
)

func main() {
	d := xmltree.Bibliography()
	ev := xsketch.NewEvaluator(d)

	// --- Example 2.1: binding tuples. ---
	q := mustQuery("for t0 in author, t1 in t0/name, t2 in t0/paper[year>2000], t3 in t2/title, t4 in t2/keyword")
	fmt.Println("Figure 2 twig query:", q)
	tuples := ev.BindingTuples(q, 0)
	fmt.Printf("binding tuples (%d):\n", len(tuples))
	for _, tp := range tuples {
		for i, e := range tp {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("t%d=%s#%d", i, d.Tag(d.Node(e).Tag), e)
		}
		fmt.Println()
	}

	// --- Figure 3: the label-split synopsis with stabilities. ---
	cfg := xsketch.DefaultSketchConfig()
	cfg.InitialEdgeBuckets = 16
	cfg.InitialValueBuckets = 16
	sk := xsketch.NewSketch(d, cfg)
	fmt.Println("\nFigure 3 synopsis edges (B = backward stable, F = forward stable):")
	for _, e := range sk.Syn.Edges() {
		from := d.Tag(sk.Syn.Node(e.From).Tag)
		to := d.Tag(sk.Syn.Node(e.To).Tag)
		flags := ""
		if e.BStable {
			flags += "B"
		}
		if e.FStable {
			flags += "F"
		}
		fmt.Printf("  %-8s -> %-8s %s\n", from, to, flags)
	}

	// --- Example 3.1: the edge distribution f_P. ---
	paper := nodeByTag(sk, "paper")
	author := nodeByTag(sk, "author")
	scope := []xsketch.ScopeEdge{
		{From: paper, To: nodeByTag(sk, "keyword")},
		{From: paper, To: nodeByTag(sk, "year")},
		{From: author, To: paper},
		{From: author, To: nodeByTag(sk, "name")},
	}
	fp, err := sk.EdgeDistribution(paper, scope)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nExample 3.1 edge distribution f_P(C_K, C_Y, C_P, C_N):")
	for _, p := range fp.Points() {
		fmt.Printf("  f_P%v = %.2f\n", p.Coords, p.Freq)
	}

	// --- Section 4 worked example on the two-book variant. ---
	d2 := workedDoc()
	sk2 := xsketch.NewSketch(d2, cfg)
	p2 := nodeByTagIn(sk2, "paper")
	a2 := nodeByTagIn(sk2, "author")
	sk2.AddScopeEdge(p2, xsketch.ScopeEdge{From: a2, To: p2})
	wq := mustQuery("t0 in author, t1 in t0/book, t2 in t0/name, t3 in t0/paper, t4 in t3/keyword, t5 in t3/year")
	fmt.Printf("\nSection 4 worked example, T = A{B, N, P{K, Y}} with |A->B| = 2:\n")
	fmt.Printf("  estimate s(T) = %.4f (paper: 10/3 = 3.3333)\n", sk2.EstimateQuery(wq))
	fmt.Printf("  exact         = %d\n", xsketch.Exact(d2, wq))
}

// mustQuery parses a twig query or aborts.
func mustQuery(src string) *xsketch.Query {
	q, err := xsketch.ParseQuery(src)
	if err != nil {
		log.Fatal(err)
	}
	return q
}

func nodeByTag(sk *xsketch.Sketch, tag string) xsketch.SynopsisNodeID { return nodeByTagIn(sk, tag) }

func nodeByTagIn(sk *xsketch.Sketch, tag string) xsketch.SynopsisNodeID {
	id, ok := sk.Syn.Doc.LookupTag(tag)
	if !ok {
		panic("unknown tag " + tag)
	}
	return sk.Syn.NodesByTag(id)[0]
}

// workedDoc is the bibliography with a second book under author a3, giving
// the |A->B| = 2 of the paper's Figure 6 walk-through.
func workedDoc() *xmltree.Document {
	d := xmltree.Bibliography()
	var a3 xmltree.NodeID
	authorTag, _ := d.LookupTag("author")
	bookTag, _ := d.LookupTag("book")
	for i := 0; i < d.Len(); i++ {
		id := xmltree.NodeID(i)
		if d.Node(id).Tag == authorTag && len(d.ChildrenWithTag(id, bookTag)) > 0 {
			a3 = id
		}
	}
	b := d.AddChild(a3, "book")
	d.AddChild(b, "title")
	return d
}

// Quickstart: parse an XML document, build a Twig XSKETCH, and estimate a
// twig query's selectivity against the exact count.
package main

import (
	"fmt"
	"log"

	"xsketch"
)

const doc = `
<bib>
  <author><name/><paper><title/><year>1999</year><keyword/><keyword/></paper>
          <paper><title/><year>2002</year><keyword/></paper></author>
  <author><name/><paper><title/><year>2001</year><keyword/></paper></author>
  <author><name/><paper><title/><year>1998</year><keyword/></paper>
          <book><title/></book></author>
</bib>`

func main() {
	// 1. Parse the document into the arena tree model.
	d, err := xsketch.ParseXMLString(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d elements\n", d.Len())

	// 2. Build a Twig XSKETCH with XBUILD under a byte budget.
	sk := xsketch.Build(d, 2048)
	fmt.Printf("synopsis: %d nodes, %d bytes\n", sk.Syn.NumNodes(), sk.SizeBytes())

	// 3. Estimate twig queries and compare with exact evaluation.
	ev := xsketch.NewEvaluator(d)
	for _, src := range []string{
		"for t0 in author, t1 in t0/name, t2 in t0/paper[year>2000], t3 in t2/title, t4 in t2/keyword",
		"for t0 in author, t1 in t0/paper, t2 in t1/keyword",
		"for t0 in author[book], t1 in t0/paper",
		"for t0 in //title",
	} {
		q, err := xsketch.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-95s est %6.2f  exact %d\n", q, sk.EstimateQuery(q), ev.Selectivity(q))
	}
}

// Optimizer: selectivity estimates in their intended role. Twig queries
// "represent the equivalent of the SQL FROM clause in the XML world"; a
// query optimizer uses cardinality estimates to order the structural joins
// of a twig pipeline. This example evaluates a twig one leg at a time,
// ranks the alternative leg orders by estimated intermediate cardinality,
// and compares the synopsis-driven ranking against the exact one.
package main

import (
	"fmt"
	"sort"

	"xsketch"
)

func main() {
	d, _ := xsketch.GenerateDataset("imdb", 1, 0.1)
	ev := xsketch.NewEvaluator(d)
	sk := xsketch.Build(d, 8*1024)
	fmt.Printf("IMDB dataset: %d elements; synopsis %d bytes\n\n", d.Len(), sk.SizeBytes())

	// The pipeline joins movies with four legs. A left-deep evaluation
	// wants the most selective legs first, so intermediate results stay
	// small.
	root := "movie[year>=1990]"
	legs := []string{"award", "actor", "producer", "keyword[=0:99]"}

	var costs []legCost
	for _, leg := range legs {
		q := prefixQuery(root, leg)
		costs = append(costs, legCost{
			leg:      leg,
			estimate: sk.EstimateQuery(q),
			exact:    ev.Selectivity(q),
		})
	}

	byEstimate := make([]legCost, len(costs))
	copy(byEstimate, costs)
	sort.Slice(byEstimate, func(i, j int) bool { return byEstimate[i].estimate < byEstimate[j].estimate })
	byExact := make([]legCost, len(costs))
	copy(byExact, costs)
	sort.Slice(byExact, func(i, j int) bool { return byExact[i].exact < byExact[j].exact })

	fmt.Printf("per-leg cardinality of %s joined with each leg:\n", root)
	fmt.Printf("%-18s %12s %10s\n", "leg", "estimate", "exact")
	for _, c := range costs {
		fmt.Printf("%-18s %12.1f %10d\n", c.leg, c.estimate, c.exact)
	}

	fmt.Println("\njoin order chosen by the synopsis (cheapest leg first):")
	printOrder(byEstimate)
	fmt.Println("optimal join order (exact cardinalities):")
	printOrder(byExact)
	if sameOrder(byEstimate, byExact) {
		fmt.Println("\nThe synopsis-driven order matches the exact order.")
	} else {
		fmt.Println("\nThe synopsis-driven order differs from the exact order; a larger")
		fmt.Println("budget tightens the ranking.")
	}
}

// legCost couples a join leg with its estimated and exact cardinality.
type legCost struct {
	leg      string
	estimate float64
	exact    int64
}

// prefixQuery builds "for t0 in <root>, t1 in t0/<leg>".
func prefixQuery(root, leg string) *xsketch.Query {
	rp, err := xsketch.ParsePath(root)
	if err != nil {
		panic(err)
	}
	lp, err := xsketch.ParsePath(leg)
	if err != nil {
		panic(err)
	}
	q := xsketch.NewQuery(rp)
	q.AddChild(q.Root, lp)
	return q
}

func printOrder(costs []legCost) {
	for i, c := range costs {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(c.leg)
	}
	fmt.Println()
}

func sameOrder(a, b []legCost) bool {
	for i := range a {
		if a[i].leg != b[i].leg {
			return false
		}
	}
	return true
}

// Sweep: the experiment behind the paper's Figure 9 as a library user
// would run it — one incremental XBUILD pass over a document, snapshotting
// the synopsis at increasing byte budgets and scoring a fixed workload at
// each, printing the error-vs-size curve.
package main

import (
	"fmt"
	"log"

	"xsketch"
)

func main() {
	doc, err := xsketch.GenerateDataset("imdb", 1, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := xsketch.DefaultWorkloadConfig(xsketch.WorkloadP)
	cfg.NumQueries = 100
	w := xsketch.GenerateWorkload(doc, cfg)
	fmt.Printf("IMDB dataset: %d elements, %d evaluation queries\n\n", doc.Len(), len(w.Queries))

	opts := xsketch.DefaultBuildOptions(1 << 30)
	b := xsketch.NewBuilder(doc, opts)
	coarse := b.Sketch().SizeBytes()

	fmt.Printf("%10s %12s %12s\n", "size (B)", "avg error", "refinements")
	for _, factor := range []float64{1, 1.5, 2, 3, 4, 6} {
		b.RunTo(int(factor * float64(coarse)))
		sk := b.Sketch()
		fmt.Printf("%10d %11.1f%% %12d\n", sk.SizeBytes(), avgError(sk, w)*100, len(b.Steps()))
	}

	fmt.Println("\nlast refinements applied:")
	steps := b.Steps()
	for _, s := range steps[max(0, len(steps)-5):] {
		fmt.Printf("  %s -> %d bytes\n", s.Refinement, s.SizeBytes)
	}
}

// avgError scores the workload with the paper's sanity-bounded metric,
// computed inline to keep the example self-contained.
func avgError(sk *xsketch.Sketch, w *xsketch.Workload) float64 {
	truths := w.Truths()
	sanity := percentile10(truths)
	total := 0.0
	for _, q := range w.Queries {
		est := sk.EstimateQuery(q.Twig)
		denom := float64(q.Truth)
		if sanity > denom {
			denom = sanity
		}
		diff := est - float64(q.Truth)
		if diff < 0 {
			diff = -diff
		}
		total += diff / denom
	}
	return total / float64(len(w.Queries))
}

func percentile10(xs []int64) float64 {
	sorted := append([]int64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	s := float64(sorted[len(sorted)/10])
	if s < 1 {
		s = 1
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

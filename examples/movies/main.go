// Movies: the paper's Section 1 motivating scenario. The twig query
//
//	for t0 in //movie[/type=X], t1 in t0/actor, t2 in t0/producer
//
// pairs every actor of a type-X movie with every producer, so its
// selectivity depends on the correlation between movie type and cast
// size ("we expect to retrieve more actors and producers per movie if
// the type X is 'Action' than if it is 'Documentary'").
//
// This example builds the IMDB-like dataset, runs the query for both
// genres at two synopsis budgets, and shows how XBUILD's refinements
// recover the correlation the coarsest summary misses.
package main

import (
	"fmt"
	"log"

	"xsketch"
)

func main() {
	d, _ := xsketch.GenerateDataset("imdb", 1, 0.1)
	ev := xsketch.NewEvaluator(d)
	fmt.Printf("IMDB dataset: %d elements\n\n", d.Len())

	queries := map[string]*xsketch.Query{}
	for name, src := range map[string]string{
		"action (type=0)":      "for t0 in //movie[/type=0], t1 in t0/actor, t2 in t0/producer",
		"documentary (type=9)": "for t0 in //movie[/type=9], t1 in t0/actor, t2 in t0/producer",
	} {
		q, err := xsketch.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		queries[name] = q
	}

	coarse := xsketch.NewSketch(d, xsketch.DefaultSketchConfig())
	refined := xsketch.Build(d, coarse.SizeBytes()*6)

	// The extended value histograms H^v (Section 3.2): correlate the
	// movie type value into the movie node's edge histogram.
	joint := xsketch.NewSketch(d, xsketch.DefaultSketchConfig())
	movieTag, _ := d.LookupTag("movie")
	typeTag, _ := d.LookupTag("type")
	for _, m := range joint.Syn.NodesByTag(movieTag) {
		for _, tn := range joint.Syn.NodesByTag(typeTag) {
			joint.SetBuckets(m, 64)
			joint.AddValueDim(m, tn, 10)
		}
	}

	fmt.Printf("%-22s %12s %12s %12s %12s\n", "genre", "exact", "coarse", "refined", "H^v joint")
	for name, q := range queries {
		truth := ev.Selectivity(q)
		fmt.Printf("%-22s %12d %12.1f %12.1f %12.1f\n",
			name, truth, coarse.EstimateQuery(q), refined.EstimateQuery(q), joint.EstimateQuery(q))
	}
	fmt.Printf("\ncoarse %dB, refined %dB, H^v joint %dB\n",
		coarse.SizeBytes(), refined.SizeBytes(), joint.SizeBytes())
	fmt.Println("\nThe coarse summary estimates both genres from the same average cast")
	fmt.Println("statistics; XBUILD's refinements separate them partially; the")
	fmt.Println("extended value histogram H^v (value-expand) captures the type/cast")
	fmt.Println("correlation directly, the paper's Section 3.2 extension.")
}

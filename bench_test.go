// These benchmarks regenerate every table and figure of the paper (via
// internal/experiments) and measure the throughput of the core operations.
// Run with:
//
//	go test -bench=. -benchmem
//
// The table/figure benchmarks execute the full experiment per iteration at
// a reduced scale and report the headline error metrics via ReportMetric;
// use `go test -bench=Figure -v` to see the regenerated rows, or
// cmd/xbench for configurable-scale runs (including -paper).
package xsketch_test

import (
	"bytes"
	"testing"

	"xsketch/internal/build"
	"xsketch/internal/cst"
	"xsketch/internal/eval"
	"xsketch/internal/experiments"
	"xsketch/internal/histogram"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
	"xsketch/internal/xsketch"
)

// benchOptions is the reduced-scale configuration used by the experiment
// benchmarks.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Scale = 0.02
	o.WorkloadSize = 40
	o.BudgetFactors = []float64{1, 2, 4}
	o.BuildMaxSteps = 60
	return o
}

func BenchmarkTable1(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatTable1(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatTable2(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkFigure9a(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure9a(o)
		if i == 0 {
			reportSeries(b, "Figure 9(a). Branching Predicates", series)
		}
	}
}

func BenchmarkFigure9b(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure9b(o)
		if i == 0 {
			reportSeries(b, "Figure 9(b). Branching and Value Predicates", series)
		}
	}
}

func reportSeries(b *testing.B, title string, series []experiments.Series) {
	b.Helper()
	var buf bytes.Buffer
	experiments.FormatSeries(&buf, title, series)
	b.Log("\n" + buf.String())
	for _, s := range series {
		if len(s.Points) > 0 {
			last := s.Points[len(s.Points)-1]
			b.ReportMetric(last.AvgError*100, s.Dataset+"_final_err_%")
		}
	}
}

func BenchmarkFigure9c(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure9c(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatRatios(&buf, series)
			b.Log("\n" + buf.String())
			for _, s := range series {
				if len(s.Points) > 0 {
					b.ReportMetric(s.Points[len(s.Points)-1].Ratio, s.Dataset+"_final_ratio")
				}
			}
		}
	}
}

func BenchmarkNegativeWorkload(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.NegativeWorkload(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatNegative(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkSinglePathComparison(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.SinglePathComparison(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatSinglePath(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkAblationRefinementPolicy(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationRefinementPolicy(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatAblation(&buf, "refinement selection policy", rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkAblationBackwardCounts(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationBackwardCounts(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatAblation(&buf, "backward counts", rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkAblationBucketBudget(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationBucketBudget(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatAblation(&buf, "bucket budget", rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkAblationValueExpand(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationValueExpand(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatAblation(&buf, "extended value histograms H^v", rows)
			b.Log("\n" + buf.String())
		}
	}
}

// --- Micro-benchmarks of the core operations. ---

func benchDocAndSketch(b *testing.B) (*xmltree.Document, *xsketch.Sketch, *workload.Workload) {
	b.Helper()
	d := xmlgen.IMDB(xmlgen.Config{Seed: 1, Scale: 0.05})
	sk := build.XBuild(d, build.DefaultOptions(4096))
	wcfg := workload.DefaultConfig(workload.KindP)
	wcfg.NumQueries = 50
	w := workload.Generate(d, wcfg)
	return d, sk, w
}

func BenchmarkEstimateQuery(b *testing.B) {
	_, sk, w := benchDocAndSketch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.Queries[i%len(w.Queries)]
		sk.EstimateQuery(q.Twig)
	}
}

// benchXMarkEstimation builds a coarsest XMark synopsis (optionally with
// the estimation cache disabled) and a 50-query P+V workload for the
// batch-estimation benchmarks.
func benchXMarkEstimation(b *testing.B, disableCache bool) (*xsketch.Sketch, []*twig.Query) {
	b.Helper()
	d := xmlgen.XMark(xmlgen.Config{Seed: 1, Scale: 0.05})
	cfg := xsketch.DefaultConfig()
	cfg.DisableEstimatorCache = disableCache
	sk := xsketch.New(d, cfg)
	wcfg := workload.DefaultConfig(workload.KindPV)
	wcfg.NumQueries = 50
	w := workload.Generate(d, wcfg)
	qs := make([]*twig.Query, len(w.Queries))
	for i, q := range w.Queries {
		qs[i] = q.Twig
	}
	return sk, qs
}

// BenchmarkEstimateWorkloadSequentialUncached is the baseline the batch
// engine is measured against: one query at a time, no memoization.
func BenchmarkEstimateWorkloadSequentialUncached(b *testing.B) {
	sk, qs := benchXMarkEstimation(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			sk.EstimateQuery(q)
		}
	}
}

// BenchmarkEstimateWorkloadBatchCachedSerial isolates the cache's effect:
// same single-threaded execution, memoized expansion and exists-fractions.
func BenchmarkEstimateWorkloadBatchCachedSerial(b *testing.B) {
	sk, qs := benchXMarkEstimation(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.EstimateBatch(qs, 1)
	}
}

// BenchmarkEstimateWorkloadBatchCached is the full batch path: worker pool
// (GOMAXPROCS) plus the shared per-sketch cache.
func BenchmarkEstimateWorkloadBatchCached(b *testing.B) {
	sk, qs := benchXMarkEstimation(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.EstimateBatch(qs, 0)
	}
}

func BenchmarkExactSelectivity(b *testing.B) {
	d, _, w := benchDocAndSketch(b)
	ev := eval.New(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.Queries[i%len(w.Queries)]
		ev.Selectivity(q.Twig)
	}
}

func BenchmarkCSTEstimate(b *testing.B) {
	d := xmlgen.IMDB(xmlgen.Config{Seed: 1, Scale: 0.05})
	c := cst.Build(d, cst.DefaultConfig())
	wcfg := workload.DefaultConfig(workload.KindSimple)
	wcfg.NumQueries = 50
	w := workload.Generate(d, wcfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.Queries[i%len(w.Queries)]
		c.EstimateQuery(q.Twig)
	}
}

func BenchmarkXBuildStep(b *testing.B) {
	d := xmlgen.IMDB(xmlgen.Config{Seed: 1, Scale: 0.05})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts := build.DefaultOptions(1 << 30)
		opts.MaxSteps = 1
		bl := build.NewBuilder(d, opts)
		b.StartTimer()
		bl.Step()
	}
}

func BenchmarkCoarsestSynopsis(b *testing.B) {
	d := xmlgen.XMark(xmlgen.Config{Seed: 1, Scale: 0.1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xsketch.New(d, xsketch.DefaultConfig())
	}
}

func BenchmarkHistogramCompress(b *testing.B) {
	s := histogram.NewSparse(3)
	rng := int32(1)
	for i := 0; i < 2000; i++ {
		rng = rng*1103515245 + 12345
		s.Add([]int32{rng % 40 & 0x1f, (rng >> 5) & 0x1f, (rng >> 10) & 0x7}, 1)
	}
	s.Normalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		histogram.Compress(s, 16)
	}
}

func BenchmarkGenerateIMDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		xmlgen.IMDB(xmlgen.Config{Seed: int64(i), Scale: 0.05})
	}
}

func BenchmarkParseSerialized(b *testing.B) {
	d := xmlgen.SwissProt(xmlgen.Config{Seed: 1, Scale: 0.05})
	var buf bytes.Buffer
	if err := xmltree.Serialize(&buf, d); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmltree.Parse(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	d := xmlgen.XMark(xmlgen.Config{Seed: 1, Scale: 0.05})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := workload.DefaultConfig(workload.KindP)
		cfg.NumQueries = 20
		cfg.Seed = int64(i)
		workload.Generate(d, cfg)
	}
}

func BenchmarkEmbeddingEnumeration(b *testing.B) {
	d := xmlgen.XMark(xmlgen.Config{Seed: 1, Scale: 0.05})
	sk := xsketch.New(d, xsketch.DefaultConfig())
	q := twig.MustParse("t0 in //item, t1 in t0/mailbox//mail, t2 in t1/from")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Embeddings(q)
	}
}

func BenchmarkAblationReferenceScoring(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationReferenceScoring(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatAblation(&buf, "XBUILD scoring truths", rows)
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkThreeWayComparison(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.ThreeWay(o)
		if i == 0 {
			var buf bytes.Buffer
			experiments.FormatThreeWay(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

// Open-loop serving benchmarks for the router work: a fixed arrival rate
// driven at (a) one replica directly and (b) a two-replica fleet behind
// the consistent-hash router, comparing achieved throughput and latency
// quantiles.
//
// TestEmitBenchPR9 (gated by EMIT_BENCH=1) runs both topologies with the
// loadgen package and writes BENCH_PR9.json; TestBenchPR9Shape validates
// the checked-in file so a stale or hand-edited report fails loudly.
// SCALING.md interprets the numbers.
package xsketch_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"xsketch/internal/loadgen"
	"xsketch/internal/router"
	"xsketch/internal/serve"
	"xsketch/internal/xmlgen"
	core "xsketch/internal/xsketch"
)

// pr9Report is the BENCH_PR9.json shape: one loadgen.Result per topology
// at a shared arrival rate.
type pr9Report struct {
	PR         int                       `json:"pr"`
	Dataset    string                    `json:"dataset"`
	Scale      float64                   `json:"scale"`
	RateRPS    float64                   `json:"rate_rps"`
	DurationS  float64                   `json:"duration_seconds"`
	Queries    []string                  `json:"queries"`
	Topologies map[string]loadgen.Result `json:"topologies"`
}

// pr9Queries mixes point and branching twigs so the plan cache sees a few
// distinct shapes, as a real workload would.
var pr9Queries = []string{
	"t0 in movie, t1 in t0/actor",
	"t0 in movie, t1 in t0/actor, t2 in t0/director",
	"t0 in movie, t1 in t0//name",
}

// newPR9Replica builds one serving replica over a freshly built IMDB
// sketch (each replica gets its own copy, as separate processes would).
func newPR9Replica(tb testing.TB) *httptest.Server {
	tb.Helper()
	d := xmlgen.Generate("imdb", xmlgen.Config{Seed: 1, Scale: 0.02})
	sk := core.New(d, core.DefaultConfig())
	s, err := serve.New(serve.Config{}, []serve.Sketch{{Name: "imdb", Source: "bench", Sketch: sk}})
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return ts
}

// TestEmitBenchPR9 writes BENCH_PR9.json when EMIT_BENCH=1: the same
// open-loop workload against one direct replica and against a two-replica
// fleet behind the router.
func TestEmitBenchPR9(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to write BENCH_PR9.json")
	}
	const (
		rate     = 400.0
		duration = 3 * time.Second
	)
	report := pr9Report{
		PR: 9, Dataset: "imdb", Scale: 0.02,
		RateRPS: rate, DurationS: duration.Seconds(),
		Queries:    pr9Queries,
		Topologies: make(map[string]loadgen.Result),
	}
	run := func(name, url string) {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			TargetURL: url,
			Sketch:    "imdb",
			Queries:   pr9Queries,
			Rate:      rate,
			Duration:  duration,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Errors > 0 {
			t.Fatalf("%s: %d transport errors — benchmark environment unhealthy", name, res.Errors)
		}
		report.Topologies[name] = res
		t.Logf("%s: achieved %.1f req/s, p50 %.6fs p95 %.6fs p99 %.6fs",
			name, res.AchievedRPS, res.P50Seconds, res.P95Seconds, res.P99Seconds)
	}

	direct := newPR9Replica(t)
	run("direct-1", direct.URL)

	r1 := newPR9Replica(t)
	r2 := newPR9Replica(t)
	rt, err := router.New(router.Config{}, []string{r1.URL, r2.URL})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	run("router-2", front.URL)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR9.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_PR9.json")
}

// TestBenchPR9Shape validates the checked-in BENCH_PR9.json: both
// topologies present, open-loop bookkeeping consistent, quantiles
// ordered, and zero requests lost in either topology.
func TestBenchPR9Shape(t *testing.T) {
	data, err := os.ReadFile("BENCH_PR9.json")
	if err != nil {
		t.Skipf("BENCH_PR9.json not present (regenerate with EMIT_BENCH=1): %v", err)
	}
	var rep pr9Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_PR9.json: %v", err)
	}
	if rep.PR != 9 || rep.RateRPS <= 0 || rep.DurationS <= 0 || len(rep.Queries) == 0 {
		t.Fatalf("malformed header: %+v", rep)
	}
	for _, name := range []string{"direct-1", "router-2"} {
		res, ok := rep.Topologies[name]
		if !ok {
			t.Errorf("topology %s missing", name)
			continue
		}
		check := func(cond bool, format string, args ...any) {
			if !cond {
				t.Errorf("%s: %s", name, fmt.Sprintf(format, args...))
			}
		}
		check(res.Sent > 0, "sent %d, want > 0", res.Sent)
		check(res.Completed == res.Sent, "completed %d of %d sent — requests lost", res.Completed, res.Sent)
		check(res.Errors == 0, "%d transport errors", res.Errors)
		check(res.StatusCounts["200"] == res.Completed, "status counts %v don't account for %d completions", res.StatusCounts, res.Completed)
		check(res.AchievedRPS > 0, "achieved rps %v", res.AchievedRPS)
		// Open-loop at a modest rate: the server must keep up with the
		// offered load within a generous margin.
		check(res.AchievedRPS >= rep.RateRPS*0.5, "achieved %.1f rps below half the %.1f target", res.AchievedRPS, rep.RateRPS)
		check(res.P50Seconds > 0 && res.P50Seconds <= res.P95Seconds && res.P95Seconds <= res.P99Seconds,
			"quantiles not ordered: p50=%v p95=%v p99=%v", res.P50Seconds, res.P95Seconds, res.P99Seconds)
		check(res.MaxSeconds >= res.P99Seconds, "max %v below p99 %v", res.MaxSeconds, res.P99Seconds)
	}
}

// Compiled-plan benchmarks: planned (plan-cache hit) vs cached-interpreter
// vs uncached-interpreter estimation on XMark. Run with:
//
//	go test -bench=BenchmarkPlan -benchmem
//
// TestEmitBenchPR6 (gated by EMIT_BENCH=1) measures the three variants and
// writes BENCH_PR6.json, the perf-trajectory data point for the plan-cache
// work; TestBenchPR6NoRegression compares it against the BENCH_PR5.json
// baseline and refuses regressions.
package xsketch_test

import (
	"encoding/json"
	"os"
	"testing"

	"xsketch"
)

// newPlanBench builds the XMark sketch the plan benchmarks share, reusing
// the tracing-bench fixture (same dataset, scale and query as
// BENCH_PR5.json so the files are comparable).
func newPlanBench(tb testing.TB) (*xsketch.Sketch, *xsketch.Query) {
	return newTracingBench(tb, true)
}

// BenchmarkPlanUncached is the interpreter with the estimator cache off —
// the same baseline BENCH_PR5.json calls "untraced".
func BenchmarkPlanUncached(b *testing.B) {
	sk, q := newTracingBench(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.EstimateQuery(q)
	}
}

// BenchmarkPlanCachedInterpreter is the interpreter with a warm estimator
// cache — the BENCH_PR5.json "cached" variant.
func BenchmarkPlanCachedInterpreter(b *testing.B) {
	sk, q := newPlanBench(b)
	sk.EstimateQuery(q) // warm the estimator cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.EstimateQuery(q)
	}
}

// BenchmarkPlanPlanned executes a cached compiled plan: histogram lookups
// and float arithmetic into pooled scratch, zero allocations per op.
func BenchmarkPlanPlanned(b *testing.B) {
	sk, q := newPlanBench(b)
	if _, err := sk.EstimateQueryPlanned(q.String()); err != nil { // compile + warm
		b.Fatal(err)
	}
	text := q.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.EstimateQueryPlanned(text); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEmitBenchPR6 writes BENCH_PR6.json when EMIT_BENCH=1, mirroring the
// BENCH_PR5.json shape so the regression gate can compare like for like.
func TestEmitBenchPR6(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to write BENCH_PR6.json")
	}
	report := benchReport{PR: 6, Dataset: "xmark", Scale: 0.02, Query: benchTracingQuery}
	for _, v := range []struct {
		name  string
		bench func(*testing.B)
	}{
		{"uncached", BenchmarkPlanUncached},
		{"cached", BenchmarkPlanCachedInterpreter},
		{"planned", BenchmarkPlanPlanned},
	} {
		r := testing.Benchmark(v.bench)
		report.Results = append(report.Results, benchRow{
			Name:        v.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR6.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_PR6.json:\n%s", out)
}

// loadBenchReport reads one BENCH_PRn.json file into rows keyed by variant
// name.
func loadBenchReport(t *testing.T, path string) (benchReport, map[string]benchRow) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("%s not present (regenerate with EMIT_BENCH=1): %v", path, err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	rows := make(map[string]benchRow, len(rep.Results))
	for _, r := range rep.Results {
		rows[r.Name] = r
	}
	return rep, rows
}

// TestBenchPR6NoRegression is the benchmark smoke gate: the checked-in
// BENCH_PR6.json must show (a) the uncached interpreter within 10% of the
// BENCH_PR5.json uncached baseline — the planner must not tax the
// interpreted path — (b) the planned hot path beating the interpreter's
// cached variant, and (c) zero allocations per planned op.
func TestBenchPR6NoRegression(t *testing.T) {
	_, pr5 := loadBenchReport(t, "BENCH_PR5.json")
	_, pr6 := loadBenchReport(t, "BENCH_PR6.json")

	base, ok := pr5["untraced"]
	if !ok {
		t.Fatal("BENCH_PR5.json has no untraced row")
	}
	cachedBase, ok := pr5["cached"]
	if !ok {
		t.Fatal("BENCH_PR5.json has no cached row")
	}
	uncached, ok := pr6["uncached"]
	if !ok {
		t.Fatal("BENCH_PR6.json has no uncached row")
	}
	planned, ok := pr6["planned"]
	if !ok {
		t.Fatal("BENCH_PR6.json has no planned row")
	}

	if uncached.NsPerOp > base.NsPerOp*1.10 {
		t.Errorf("uncached interpreter regressed: %.0f ns/op vs PR5 baseline %.0f (>10%%)",
			uncached.NsPerOp, base.NsPerOp)
	}
	if planned.NsPerOp >= cachedBase.NsPerOp {
		t.Errorf("planned path %.0f ns/op does not beat the PR5 cached interpreter %.0f",
			planned.NsPerOp, cachedBase.NsPerOp)
	}
	if planned.AllocsPerOp != 0 {
		t.Errorf("planned path allocates %d/op, want 0", planned.AllocsPerOp)
	}
}

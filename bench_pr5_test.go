// Tracing-cost benchmarks: traced vs untraced vs cached estimation on
// XMark. Run with:
//
//	go test -bench=BenchmarkTracing -benchmem
//
// TestEmitBenchPR5 (gated by EMIT_BENCH=1) measures the three variants
// and writes BENCH_PR5.json, the repo's perf-trajectory data point for
// the tracing work.
package xsketch_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"xsketch"
)

// benchTracingQuery is a branching XMark twig exercising expansion,
// several embeddings and the full TREEPARSE recursion.
const benchTracingQuery = "for t0 in //item, t1 in t0/name, t2 in t0/incategory"

// newTracingBench builds the XMark sketch the tracing benchmarks share.
// Caching is disabled so every iteration pays full estimation cost
// (otherwise all variants converge to cache-hit latency); the cached
// variant builds its own cache-enabled sketch.
func newTracingBench(tb testing.TB, cached bool) (*xsketch.Sketch, *xsketch.Query) {
	tb.Helper()
	doc, err := xsketch.GenerateDataset("xmark", 1, 0.02)
	if err != nil {
		tb.Fatalf("GenerateDataset: %v", err)
	}
	cfg := xsketch.DefaultSketchConfig()
	cfg.DisableEstimatorCache = !cached
	sk := xsketch.NewSketch(doc, cfg)
	q, err := xsketch.ParseQuery(benchTracingQuery)
	if err != nil {
		tb.Fatalf("ParseQuery: %v", err)
	}
	return sk, q
}

func BenchmarkTracingUntraced(b *testing.B) {
	sk, q := newTracingBench(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.EstimateQuery(q)
	}
}

func BenchmarkTracingTraced(b *testing.B) {
	sk, q := newTracingBench(b, false)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := xsketch.NewTraceRecorder(xsketch.TraceOptions{})
		if _, err := sk.EstimateQueryTraced(ctx, q, rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTracingCached(b *testing.B) {
	sk, q := newTracingBench(b, true)
	sk.EstimateQuery(q) // warm the estimator cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.EstimateQuery(q)
	}
}

// TestTracingDisabledOverheadWithinNoise pins the zero-overhead claim at
// the wall-clock level: with a nil recorder the traced entry point runs
// the same code path as EstimateQuery, so its best-of-trials time must
// sit within noise of the untraced one. Allocation equality is asserted
// exactly in internal/xsketch; this guards against a future accidental
// slow path (per-call setup, locking) behind the traced entry point.
func TestTracingDisabledOverheadWithinNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	sk, q := newTracingBench(t, false)
	ctx := context.Background()
	const iters = 60

	timeBatch := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// Warm up both paths once before timing.
	sk.EstimateQuery(q)
	sk.EstimateQueryTraced(ctx, q, nil)

	untraced := timeBatch(func() { sk.EstimateQuery(q) })
	disabled := timeBatch(func() { sk.EstimateQueryTraced(ctx, q, nil) })
	// Best-of-five batches is stable enough that 1.5x headroom means
	// "within noise" rather than "within a constant factor".
	if disabled > untraced*3/2 {
		t.Errorf("tracing-disabled path took %v for %d estimates, untraced %v (> 1.5x)",
			disabled, iters, untraced)
	}
}

// benchRow is one variant's measurements inside BENCH_PR5.json.
type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the BENCH_PR5.json document.
type benchReport struct {
	PR      int        `json:"pr"`
	Dataset string     `json:"dataset"`
	Scale   float64    `json:"scale"`
	Query   string     `json:"query"`
	Results []benchRow `json:"results"`
}

// TestEmitBenchPR5 writes BENCH_PR5.json when EMIT_BENCH=1. It is a test
// rather than a benchmark so `go test -run TestEmitBenchPR5` can refresh
// the file without the full bench suite.
func TestEmitBenchPR5(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to write BENCH_PR5.json")
	}
	report := benchReport{PR: 5, Dataset: "xmark", Scale: 0.02, Query: benchTracingQuery}
	for _, v := range []struct {
		name  string
		bench func(*testing.B)
	}{
		{"untraced", BenchmarkTracingUntraced},
		{"traced", BenchmarkTracingTraced},
		{"cached", BenchmarkTracingCached},
	} {
		r := testing.Benchmark(v.bench)
		report.Results = append(report.Results, benchRow{
			Name:        v.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR5.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_PR5.json:\n%s", out)
}

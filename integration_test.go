package xsketch_test

import (
	"bytes"
	"math"
	"testing"

	"xsketch/internal/build"
	"xsketch/internal/cst"
	"xsketch/internal/eval"
	"xsketch/internal/metrics"
	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
	"xsketch/internal/xsketch"
)

// TestPipelineEndToEnd exercises the full flow on every dataset: generate,
// serialize, re-parse, build with XBUILD, and estimate a workload whose
// error must land below a sanity threshold.
func TestPipelineEndToEnd(t *testing.T) {
	for _, name := range xmlgen.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			doc := xmlgen.Generate(name, xmlgen.Config{Seed: 21, Scale: 0.03})

			// Round-trip through XML text: the estimates must be identical
			// on the re-parsed document.
			var buf bytes.Buffer
			if err := xmltree.Serialize(&buf, doc); err != nil {
				t.Fatalf("Serialize: %v", err)
			}
			doc2, err := xmltree.Parse(&buf)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if doc2.Len() != doc.Len() {
				t.Fatalf("round trip changed element count: %d -> %d", doc.Len(), doc2.Len())
			}

			wcfg := workload.DefaultConfig(workload.KindP)
			wcfg.NumQueries = 40
			wcfg.Seed = 5
			w := workload.Generate(doc2, wcfg)
			if len(w.Queries) < 20 {
				t.Fatalf("workload too small: %d", len(w.Queries))
			}

			coarse := xsketch.New(doc2, xsketch.DefaultConfig())
			opts := build.DefaultOptions(coarse.SizeBytes() * 4)
			opts.MaxSteps = 80
			sk := build.XBuild(doc2, opts)
			if err := sk.Validate(); err != nil {
				t.Fatalf("built synopsis invalid: %v", err)
			}

			results := make([]metrics.Result, len(w.Queries))
			for i, q := range w.Queries {
				results[i] = metrics.Result{Truth: q.Truth, Estimate: sk.EstimateQuery(q.Twig)}
			}
			s := metrics.Evaluate(results, 0)
			t.Logf("%s: built %dB, %s", name, sk.SizeBytes(), s)
			if s.AvgError > 0.5 {
				t.Fatalf("%s: end-to-end error %.0f%% too high", name, s.AvgError*100)
			}
		})
	}
}

// TestRefinementNeverBreaksEstimates runs XBUILD step by step and checks
// each intermediate synopsis stays valid and yields finite, non-negative
// estimates.
func TestRefinementNeverBreaksEstimates(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 9, Scale: 0.02})
	wcfg := workload.DefaultConfig(workload.KindPV)
	wcfg.NumQueries = 15
	w := workload.Generate(doc, wcfg)
	opts := build.DefaultOptions(1 << 30)
	opts.MaxSteps = 25
	b := build.NewBuilder(doc, opts)
	for step := 0; step < opts.MaxSteps; step++ {
		if !b.Step() {
			break
		}
		sk := b.Sketch()
		if err := sk.Validate(); err != nil {
			t.Fatalf("step %d: invalid synopsis: %v", step, err)
		}
		for _, q := range w.Queries {
			est := sk.EstimateQuery(q.Twig)
			if est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
				t.Fatalf("step %d: estimate %v for %s", step, est, q.Twig)
			}
		}
	}
}

// TestXSKETCHBeatsCSTOnSkewedData pins the headline Figure 9(c) claim at a
// fixed budget: the XSKETCH error is lower than the CST error on the
// skewed IMDB dataset.
func TestXSKETCHBeatsCSTOnSkewedData(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 2, Scale: 0.05})
	wcfg := workload.DefaultConfig(workload.KindSimple)
	wcfg.NumQueries = 60
	w := workload.Generate(doc, wcfg)

	cfg := xsketch.DefaultConfig()
	cfg.InitialValueBuckets = 0
	coarse := xsketch.New(doc, cfg)
	budget := coarse.SizeBytes() * 4

	opts := build.DefaultOptions(budget)
	opts.Sketch = cfg
	opts.MaxSteps = 120
	sk := build.XBuild(doc, opts)

	c := cst.Build(doc, cst.DefaultConfig())
	if c.SizeBytes() > sk.SizeBytes() {
		c.Prune(sk.SizeBytes())
	}

	var xres, cres []metrics.Result
	for _, q := range w.Queries {
		xres = append(xres, metrics.Result{Truth: q.Truth, Estimate: sk.EstimateQuery(q.Twig)})
		cres = append(cres, metrics.Result{Truth: q.Truth, Estimate: c.EstimateQuery(q.Twig)})
	}
	xe := metrics.Evaluate(xres, 0).AvgError
	ce := metrics.Evaluate(cres, 10).AvgError
	t.Logf("imdb @%dB: xsketch %.1f%%, cst %.1f%%", sk.SizeBytes(), xe*100, ce*100)
	if xe >= ce {
		t.Fatalf("XSKETCH (%.3f) not better than CST (%.3f)", xe, ce)
	}
}

// TestMotivatingFigure4EndToEnd pins the paper's motivating observation:
// two documents with the same zero-error single-path synopsis but twig
// selectivities 2000 vs 10100, distinguished only by edge distributions.
func TestMotivatingFigure4EndToEnd(t *testing.T) {
	q := twig.MustParse("t0 in a, t1 in t0/b, t2 in t0/c")
	docs := map[string]*xmltree.Document{
		"uniform": xmltree.MotivatingUniform(),
		"skewed":  xmltree.MotivatingSkewed(),
	}
	truths := map[string]int64{"uniform": 2000, "skewed": 10100}
	for name, d := range docs {
		if got := eval.New(d).Selectivity(q); got != truths[name] {
			t.Fatalf("%s: truth %d, want %d", name, got, truths[name])
		}
		// Single-path selectivities agree across the two documents.
		for _, p := range []string{"a", "a/b", "a/c"} {
			u := eval.New(docs["uniform"]).PathCount(mustPath(t, p))
			s := eval.New(docs["skewed"]).PathCount(mustPath(t, p))
			if u != s {
				t.Fatalf("path %s differs: %d vs %d", p, u, s)
			}
		}
		// A 4-bucket (exact here) edge histogram recovers the twig truth.
		cfg := xsketch.DefaultConfig()
		cfg.InitialEdgeBuckets = 4
		sk := xsketch.New(d, cfg)
		if got := sk.EstimateQuery(q); math.Abs(got-float64(truths[name])) > 1e-6 {
			t.Fatalf("%s: estimate %v, want %d", name, got, truths[name])
		}
	}
}

func mustPath(t *testing.T, src string) *pathexpr.Path {
	t.Helper()
	q := twig.MustParse("t0 in " + src)
	return q.Root.Path
}

// TestWorkloadTruthsStableAcrossSerialization ensures the exact evaluator
// is deterministic over a serialize/parse round trip.
func TestWorkloadTruthsStableAcrossSerialization(t *testing.T) {
	doc := xmlgen.SwissProt(xmlgen.Config{Seed: 4, Scale: 0.02})
	wcfg := workload.DefaultConfig(workload.KindP)
	wcfg.NumQueries = 20
	w := workload.Generate(doc, wcfg)

	var buf bytes.Buffer
	if err := xmltree.Serialize(&buf, doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(doc2)
	for _, q := range w.Queries {
		if got := ev.Selectivity(q.Twig); got != q.Truth {
			t.Fatalf("truth changed after round trip: %d vs %d for %s", got, q.Truth, q.Twig)
		}
	}
}

// TestRecursiveDatasetEndToEnd exercises the full pipeline on the
// recursive parts dataset: descendant queries over a cyclic synopsis,
// XBUILD refinement, and estimation sanity.
func TestRecursiveDatasetEndToEnd(t *testing.T) {
	doc := xmlgen.Parts(xmlgen.Config{Seed: 3, Scale: 0.1})
	ev := eval.New(doc)
	opts := build.DefaultOptions(4096)
	opts.MaxSteps = 60
	sk := build.XBuild(doc, opts)
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, src := range []string{
		"t0 in //part, t1 in t0/cost",
		"t0 in assembly, t1 in t0//supplier",
		"t0 in //part[cost>500], t1 in t0/name",
		"t0 in //part, t1 in t0/part, t2 in t1/part",
	} {
		q := twig.MustParse(src)
		truth := float64(ev.Selectivity(q))
		est := sk.EstimateQuery(q)
		if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
			t.Fatalf("%s: estimate %v", src, est)
		}
		if truth > 50 && (est < truth/4 || est > truth*4) {
			t.Fatalf("%s: estimate %v far from truth %v", src, est, truth)
		}
	}
}

// Command xbench runs the paper's experiments at a configurable scale and
// prints the corresponding tables and figures as text.
//
// Usage:
//
//	xbench -exp table1|table2|fig9a|fig9b|fig9c|negative|singlepath|ablations|all \
//	       [-scale 0.05] [-queries 120] [-seed 1] [-paper]
//
// -paper selects the full-scale configuration (Scale 1, 1000-query
// workloads); expect several minutes per figure.
//
// With -load URL, xbench becomes an open-loop load generator against a
// running xserve (or router) instead of running paper experiments:
//
//	xbench -load http://127.0.0.1:8080 -rate 500 -load-duration 30s \
//	       -load-sketch imdb -load-query "t0 in movie, t1 in t0/actor" \
//	       [-load-out result.json]
//
// Requests arrive at the fixed target rate regardless of response times
// (open-loop, so tail latency includes queueing delay), and the run
// reports achieved throughput plus exact p50/p95/p99 latencies — as
// text, and as JSON when -load-out is given. See SCALING.md for worked
// interpretation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"xsketch/internal/experiments"
	"xsketch/internal/loadgen"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var loadQueries multiFlag
	flag.Var(&loadQueries, "load-query", "twig query for -load mode (repeatable; cycled round-robin)")
	var (
		loadURL      = flag.String("load", "", "run as an open-loop load generator against this base URL instead of running experiments")
		loadRate     = flag.Float64("rate", 100, "arrival rate in requests/second for -load mode")
		loadDuration = flag.Duration("load-duration", 10*time.Second, "how long to generate load in -load mode")
		loadSketch   = flag.String("load-sketch", "", "sketch name for -load mode (empty = server's single-sketch default)")
		loadTimeout  = flag.Duration("load-timeout", 10*time.Second, "per-request timeout in -load mode")
		loadOut      = flag.String("load-out", "", "write the -load result as JSON to this file")
	)
	var (
		exp     = flag.String("exp", "all", "experiment: table1, table2, fig9a, fig9b, fig9c, negative, singlepath, threeway, ablations, all")
		scale   = flag.Float64("scale", 0.05, "dataset scale factor (1 = paper-sized)")
		queries = flag.Int("queries", 120, "workload size")
		seed    = flag.Int64("seed", 1, "random seed")
		paper   = flag.Bool("paper", false, "use the paper-scale configuration (slow)")
		steps   = flag.Int("steps", 300, "max XBUILD refinement steps")
		workers = flag.Int("workers", 0, "estimation workers for workload scoring (0 = GOMAXPROCS)")
		planned = flag.Bool("planned", false, "score workloads through the compiled-plan cache (bit-identical, faster on repeated shapes)")
	)
	flag.Parse()

	if *loadURL != "" {
		os.Exit(runLoad(*loadURL, *loadSketch, loadQueries, *loadRate, *loadDuration, *loadTimeout, *loadOut))
	}

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.WorkloadSize = *queries
	opts.Seed = *seed
	opts.BuildMaxSteps = *steps
	if *paper {
		opts = experiments.PaperOptions()
		opts.Seed = *seed
	}
	opts.Workers = *workers
	opts.Planned = *planned

	run := func(name string, fn func()) {
		start := time.Now()
		fn()
		fmt.Printf("[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	w := os.Stdout
	any := false
	want := func(name string) bool {
		if *exp == "all" || *exp == name {
			any = true
			return true
		}
		return false
	}
	if want("table1") {
		run("table1", func() { experiments.FormatTable1(w, experiments.Table1(opts)) })
	}
	if want("table2") {
		run("table2", func() { experiments.FormatTable2(w, experiments.Table2(opts)) })
	}
	if want("fig9a") {
		run("fig9a", func() {
			experiments.FormatSeries(w, "Figure 9(a). Branching Predicates: IMDB and XMark", experiments.Figure9a(opts))
		})
	}
	if want("fig9b") {
		run("fig9b", func() {
			experiments.FormatSeries(w, "Figure 9(b). Branching and Value Predicates: IMDB and XMark", experiments.Figure9b(opts))
		})
	}
	if want("fig9c") {
		run("fig9c", func() { experiments.FormatRatios(w, experiments.Figure9c(opts)) })
	}
	if want("negative") {
		run("negative", func() { experiments.FormatNegative(w, experiments.NegativeWorkload(opts)) })
	}
	if want("singlepath") {
		run("singlepath", func() { experiments.FormatSinglePath(w, experiments.SinglePathComparison(opts)) })
	}
	if want("threeway") {
		run("threeway", func() { experiments.FormatThreeWay(w, experiments.ThreeWay(opts)) })
	}
	if want("ablations") {
		run("ablations", func() {
			experiments.FormatAblation(w, "Ablation: refinement selection policy", experiments.AblationRefinementPolicy(opts))
			experiments.FormatAblation(w, "Ablation: backward counts in edge-expand", experiments.AblationBackwardCounts(opts))
			experiments.FormatAblation(w, "Ablation: uniform histogram bucket budget (no structural refinement)", experiments.AblationBucketBudget(opts))
			experiments.FormatAblation(w, "Ablation: extended value histograms H^v (value-expand)", experiments.AblationValueExpand(opts))
			experiments.FormatAblation(w, "Ablation: value summary method (equi-depth vs wavelet)", experiments.AblationValueSummary(opts))
			experiments.FormatAblation(w, "Ablation: XBUILD scoring truths (exact vs reference summary)", experiments.AblationReferenceScoring(opts))
			experiments.FormatAblation(w, "Ablation: stored per-edge counts vs stability bits", experiments.AblationEdgeCounts(opts))
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// runLoad executes one open-loop load-generator run and reports it,
// returning the process exit code. SIGINT stops the schedule early and
// still reports what completed.
func runLoad(url, sketch string, queries []string, rate float64, duration, timeout time.Duration, outPath string) int {
	if len(queries) == 0 {
		// A sensible default twig so a bare `-load URL` run works against
		// any of the generated datasets' common shape.
		queries = []string{"t0 in movie, t1 in t0/actor"}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "loadgen: %s at %.0f req/s for %s (%d distinct queries)\n",
		url, rate, duration, len(queries))
	res, err := loadgen.Run(ctx, loadgen.Config{
		TargetURL: url,
		Sketch:    sketch,
		Queries:   queries,
		Rate:      rate,
		Duration:  duration,
		Timeout:   timeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	fmt.Printf("sent %d  completed %d  errors %d  achieved %.1f req/s\n",
		res.Sent, res.Completed, res.Errors, res.AchievedRPS)
	fmt.Printf("latency p50 %.6fs  p95 %.6fs  p99 %.6fs  mean %.6fs  max %.6fs\n",
		res.P50Seconds, res.P95Seconds, res.P99Seconds, res.MeanSeconds, res.MaxSeconds)
	codes := make([]string, 0, len(res.StatusCounts))
	for code := range res.StatusCounts {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Printf("status %s: %d\n", code, res.StatusCounts[code])
	}
	if outPath != "" {
		data, merr := json.MarshalIndent(res, "", "  ")
		if merr != nil {
			fmt.Fprintf(os.Stderr, "loadgen: marshal result: %v\n", merr)
			return 1
		}
		if werr := os.WriteFile(outPath, append(data, '\n'), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", outPath, werr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", outPath)
	}
	return 0
}

// Command xbench runs the paper's experiments at a configurable scale and
// prints the corresponding tables and figures as text.
//
// Usage:
//
//	xbench -exp table1|table2|fig9a|fig9b|fig9c|negative|singlepath|ablations|all \
//	       [-scale 0.05] [-queries 120] [-seed 1] [-paper]
//
// -paper selects the full-scale configuration (Scale 1, 1000-query
// workloads); expect several minutes per figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xsketch/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1, table2, fig9a, fig9b, fig9c, negative, singlepath, threeway, ablations, all")
		scale   = flag.Float64("scale", 0.05, "dataset scale factor (1 = paper-sized)")
		queries = flag.Int("queries", 120, "workload size")
		seed    = flag.Int64("seed", 1, "random seed")
		paper   = flag.Bool("paper", false, "use the paper-scale configuration (slow)")
		steps   = flag.Int("steps", 300, "max XBUILD refinement steps")
		workers = flag.Int("workers", 0, "estimation workers for workload scoring (0 = GOMAXPROCS)")
		planned = flag.Bool("planned", false, "score workloads through the compiled-plan cache (bit-identical, faster on repeated shapes)")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.WorkloadSize = *queries
	opts.Seed = *seed
	opts.BuildMaxSteps = *steps
	if *paper {
		opts = experiments.PaperOptions()
		opts.Seed = *seed
	}
	opts.Workers = *workers
	opts.Planned = *planned

	run := func(name string, fn func()) {
		start := time.Now()
		fn()
		fmt.Printf("[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	w := os.Stdout
	any := false
	want := func(name string) bool {
		if *exp == "all" || *exp == name {
			any = true
			return true
		}
		return false
	}
	if want("table1") {
		run("table1", func() { experiments.FormatTable1(w, experiments.Table1(opts)) })
	}
	if want("table2") {
		run("table2", func() { experiments.FormatTable2(w, experiments.Table2(opts)) })
	}
	if want("fig9a") {
		run("fig9a", func() {
			experiments.FormatSeries(w, "Figure 9(a). Branching Predicates: IMDB and XMark", experiments.Figure9a(opts))
		})
	}
	if want("fig9b") {
		run("fig9b", func() {
			experiments.FormatSeries(w, "Figure 9(b). Branching and Value Predicates: IMDB and XMark", experiments.Figure9b(opts))
		})
	}
	if want("fig9c") {
		run("fig9c", func() { experiments.FormatRatios(w, experiments.Figure9c(opts)) })
	}
	if want("negative") {
		run("negative", func() { experiments.FormatNegative(w, experiments.NegativeWorkload(opts)) })
	}
	if want("singlepath") {
		run("singlepath", func() { experiments.FormatSinglePath(w, experiments.SinglePathComparison(opts)) })
	}
	if want("threeway") {
		run("threeway", func() { experiments.FormatThreeWay(w, experiments.ThreeWay(opts)) })
	}
	if want("ablations") {
		run("ablations", func() {
			experiments.FormatAblation(w, "Ablation: refinement selection policy", experiments.AblationRefinementPolicy(opts))
			experiments.FormatAblation(w, "Ablation: backward counts in edge-expand", experiments.AblationBackwardCounts(opts))
			experiments.FormatAblation(w, "Ablation: uniform histogram bucket budget (no structural refinement)", experiments.AblationBucketBudget(opts))
			experiments.FormatAblation(w, "Ablation: extended value histograms H^v (value-expand)", experiments.AblationValueExpand(opts))
			experiments.FormatAblation(w, "Ablation: value summary method (equi-depth vs wavelet)", experiments.AblationValueSummary(opts))
			experiments.FormatAblation(w, "Ablation: XBUILD scoring truths (exact vs reference summary)", experiments.AblationReferenceScoring(opts))
			experiments.FormatAblation(w, "Ablation: stored per-edge counts vs stability bits", experiments.AblationEdgeCounts(opts))
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// Command xbuild constructs a Twig XSKETCH synopsis for an XML document
// and reports its structure and size. With -trace it streams one JSONL
// telemetry event per adopted refinement to stderr while the build runs
// (op, target node, marginal gain, space delta, elapsed seconds).
//
// Usage:
//
//	xbuild -in doc.xml -budget 51200 [-trace] [-seed 1]
//	xbuild -dataset imdb -scale 0.1 -budget 4096 -o imdb.xsb
//	xbuild -dataset imdb -catalog ./sketches -name imdb
//
// Exactly one of -in (an XML file, '-' for stdin) or -dataset must be
// given. -o persists the synopsis in the standalone binary format
// (DESIGN.md §12) that xserve and xestimate load without the document;
// -gob switches to the legacy gob form, which needs the original
// document at load time. -catalog writes the synopsis into a catalog
// directory as <name>.xsb, ready for `xserve -catalog`. All artifact
// writes are atomic: a crash mid-write never leaves a torn file.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"xsketch/internal/build"
	"xsketch/internal/catalog"
	"xsketch/internal/cli"
	"xsketch/internal/xsketch"
)

func main() {
	var (
		in      = flag.String("in", "", "input XML file ('-' for stdin)")
		dataset = flag.String("dataset", "", "generate a dataset instead of reading XML: xmark, imdb, sprot, parts")
		scale   = flag.Float64("scale", 0.1, "dataset scale when -dataset is used")
		budget  = flag.Int("budget", 50*1024, "synopsis space budget in bytes")
		seed    = flag.Int64("seed", 1, "random seed for XBUILD sampling")
		trace   = flag.Bool("trace", false, "stream one JSONL telemetry event per adopted refinement to stderr")
		steps   = flag.Int("steps", 1000, "max refinement steps")
		out     = flag.String("o", "", "persist the built synopsis to this file in the standalone binary format (load with xestimate/xserve, no document needed)")
		gob     = flag.Bool("gob", false, "write -o in the legacy gob format instead (requires the document at load time)")
		catDir  = flag.String("catalog", "", "write the synopsis into this catalog directory as <name>.xsb")
		name    = flag.String("name", "", "catalog entry name (default: -dataset name, or 'sketch')")
		dot     = flag.String("dot", "", "write the built synopsis as a Graphviz digraph to this file")
	)
	flag.Parse()

	doc, err := cli.LoadDoc(*in, *dataset, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := build.DefaultOptions(*budget)
	opts.Seed = *seed
	opts.MaxSteps = *steps
	if *trace {
		opts.Sink = build.NewJSONLSink(os.Stderr)
	}
	b := build.NewBuilder(doc, opts)
	fmt.Printf("coarsest synopsis: %d nodes, %d edges, %d bytes\n",
		b.Sketch().Syn.NumNodes(), b.Sketch().Syn.NumEdges(), b.Sketch().SizeBytes())
	b.Run()
	sk := b.Sketch()
	if len(b.Steps()) == 0 && sk.SizeBytes() > *budget {
		fmt.Printf("budget below coarsest synopsis (%d bytes); no refinements applied\n", sk.SizeBytes())
	}
	fmt.Printf("built synopsis:    %d nodes, %d edges, %d bytes (budget %d, %d refinements)\n",
		sk.Syn.NumNodes(), sk.Syn.NumEdges(), sk.SizeBytes(), *budget, len(b.Steps()))
	fmt.Println(sk.Stats())
	if err := sk.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "synopsis validation failed:", err)
		os.Exit(1)
	}
	if *out != "" {
		var data []byte
		format := "standalone binary"
		if *gob {
			var buf bytes.Buffer
			if err := xsketch.Save(&buf, sk); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			data = buf.Bytes()
			format = "legacy gob"
		} else {
			data, err = catalog.EncodeBytes(sk)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := cli.WriteFileAtomic(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("persisted synopsis to %s (%s, %d bytes)\n", *out, format, len(data))
	}
	if *catDir != "" {
		entry := *name
		if entry == "" {
			entry = *dataset
		}
		if entry == "" {
			entry = "sketch"
		}
		path, err := catalog.Write(*catDir, entry, sk)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote catalog entry %s\n", path)
	}
	if *dot != "" {
		var buf bytes.Buffer
		if err := sk.WriteDOT(&buf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := cli.WriteFileAtomic(*dot, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote DOT graph to %s\n", *dot)
	}
}

// Command xgen generates one of the synthetic datasets as an XML file.
//
// Usage:
//
//	xgen -dataset xmark|imdb|sprot [-scale 1] [-seed 1] [-o out.xml]
//
// With -o "-" (the default) the document is written to stdout.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"

	"xsketch/internal/cli"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
)

func main() {
	var (
		dataset = flag.String("dataset", "xmark", "dataset: xmark, imdb, sprot")
		scale   = flag.Float64("scale", 1, "scale factor (1 = paper-sized)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "-", "output file ('-' for stdout)")
		stats   = flag.Bool("stats", false, "print document statistics to stderr")
	)
	flag.Parse()

	known := false
	for _, n := range xmlgen.AllNames() {
		if n == *dataset {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want one of %v)\n", *dataset, xmlgen.AllNames())
		os.Exit(2)
	}
	doc := xmlgen.Generate(*dataset, xmlgen.Config{Seed: *seed, Scale: *scale})

	if *out == "-" {
		bw := bufio.NewWriter(os.Stdout)
		if err := xmltree.Serialize(bw, doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := bw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		// Serialize into memory and write atomically, so an interrupted
		// run never leaves a truncated document behind.
		var buf bytes.Buffer
		if err := xmltree.Serialize(&buf, doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := cli.WriteFileAtomic(*out, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *stats {
		s := xmltree.ComputeStats(doc)
		fmt.Fprintf(os.Stderr, "%s: %d elements, %d tags, %d distinct paths, depth %d, %.2f MB\n",
			*dataset, s.ElementCount, s.DistinctTags, s.DistinctPaths, s.MaxDepth,
			float64(s.TextBytes)/(1<<20))
	}
}

// Command xestimate estimates the selectivity of a twig query over an XML
// document using a Twig XSKETCH built on the fly, and compares it against
// the exact count.
//
// Usage:
//
//	xestimate -in doc.xml -query "for t0 in //movie, t1 in t0/actor" [-budget 8192]
//	xestimate -dataset imdb -scale 0.1 -query "t0 in movie[type=0], t1 in t0/actor, t2 in t0/producer"
//
// The query uses the paper's for-clause notation (see internal/twig).
package main

import (
	"flag"
	"fmt"
	"os"

	"xsketch/internal/build"
	"xsketch/internal/catalog"
	"xsketch/internal/cli"
	"xsketch/internal/eval"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
	"xsketch/internal/xsketch"
)

func main() {
	var (
		in       = flag.String("in", "", "input XML file ('-' for stdin)")
		dataset  = flag.String("dataset", "", "generate a dataset instead of reading XML")
		scale    = flag.Float64("scale", 0.1, "dataset scale when -dataset is used")
		query    = flag.String("query", "", "twig query in for-clause notation (required)")
		budget   = flag.Int("budget", 16*1024, "synopsis space budget in bytes")
		seed     = flag.Int64("seed", 1, "random seed")
		exact    = flag.Bool("exact", true, "also compute the exact selectivity")
		synopsis = flag.String("synopsis", "", "load a persisted synopsis (from xbuild -o) instead of building one")
		explain  = flag.Bool("explain", false, "print the structured estimation trace")
		format   = flag.String("format", "text", "explain output format: json or text")
		plan     = flag.Bool("plan", false, "estimate through the compiled-plan path and print the plan summary")
	)
	flag.Parse()

	if *query == "" {
		fmt.Fprintln(os.Stderr, "-query is required")
		os.Exit(2)
	}
	q, err := twig.Parse(*query)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// A standalone binary synopsis (xbuild -o, DESIGN.md §12) loads with
	// no document at all; the legacy gob form replays against one. Sniff
	// the file so both keep working behind the same flag.
	standalone := false
	if *synopsis != "" {
		standalone, err = catalog.SniffFile(*synopsis)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	var doc *xmltree.Document
	if !standalone || *in != "" || *dataset != "" {
		doc, err = cli.LoadDoc(*in, *dataset, *scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var sk *xsketch.Sketch
	switch {
	case standalone:
		sk, _, err = catalog.Open(*synopsis)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *synopsis != "":
		f, err := os.Open(*synopsis)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sk, err = xsketch.Load(f, doc)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		opts := build.DefaultOptions(*budget)
		opts.Seed = *seed
		sk = build.XBuild(doc, opts)
	}
	var est float64
	if *explain {
		// The explain run doubles as the estimate so the trace reflects a
		// cold estimator cache — that keeps -format json byte-stable run
		// over run.
		ex := sk.ExplainQuery(q)
		var err error
		switch *format {
		case "json":
			err = ex.WriteJSON(os.Stdout)
		case "text":
			err = ex.WriteText(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "unknown -format %q (want json or text)\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		est = ex.Estimate
	} else if *plan {
		p := sk.PlanQuery(q)
		res := sk.EstimatePlan(p)
		est = res.Estimate
		fmt.Printf("plan:      %s\n", p)
	} else {
		est = sk.EstimateQuery(q)
	}
	fmt.Printf("query:     %s\n", q)
	fmt.Printf("synopsis:  %d bytes (%d nodes)\n", sk.SizeBytes(), sk.Syn.NumNodes())
	fmt.Printf("estimate:  %.2f binding tuples\n", est)
	if *exact && doc == nil {
		fmt.Println("exact:     skipped (standalone synopsis, no document; pass -in or -dataset to compare)")
	} else if *exact {
		truth := eval.New(doc).Selectivity(q)
		fmt.Printf("exact:     %d binding tuples\n", truth)
		denom := float64(truth)
		if denom < 1 {
			denom = 1
		}
		fmt.Printf("rel error: %.1f%%\n", 100*abs(est-float64(truth))/denom)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

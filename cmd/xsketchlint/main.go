// Command xsketchlint runs the repo's invariant analyzers (divguard,
// maporder, sketchmutate, nondeterminism, pkgdoc) over Go packages.
//
// Standalone use, from anywhere in the module:
//
//	go run ./cmd/xsketchlint ./...
//	go run ./cmd/xsketchlint -only pkgdoc ./...
//
// It exits 1 and prints file:line:col: message [analyzer] lines when
// unsuppressed findings exist, 0 when clean. It also speaks enough of the
// vet tool protocol (-V=full plus *.cfg package units) to be used as
//
//	go vet -vettool=$(which xsketchlint) ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"xsketch/internal/lint"
	"xsketch/internal/lint/analysis"
)

func main() {
	// `go vet` first probes the tool with a bare -flags argument and wants
	// a JSON description of tool-specific flags on stdout. We define none.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	version := flag.String("V", "", "print version and exit (vet protocol)")
	only := flag.String("only", "", "comma-separated analyzer names to report (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xsketchlint [-only analyzers] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *version != "" {
		// `go vet` probes the tool with -V=full and requires the line to
		// end in a buildID= field it can cache against; hash the binary so
		// rebuilding the tool invalidates cached vet results.
		if *version != "full" {
			fmt.Println("xsketchlint version devel")
			return
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sum := sha256.Sum256(data)
		fmt.Printf("xsketchlint version devel buildID=%02x\n", sum)
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := lint.Run(dir, args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *only != "" {
		// Malformed-suppression findings (analyzer "lint") always survive
		// the filter: a broken directive must not hide behind -only.
		keep := map[string]bool{"lint": true}
		known := make(map[string]bool, len(lint.Analyzers))
		for _, a := range lint.Analyzers {
			known[a.Name] = true
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "xsketchlint: unknown analyzer %q in -only\n", name)
				os.Exit(2)
			}
			keep[name] = true
		}
		kept := findings[:0]
		for _, f := range findings {
			if keep[f.Analyzer] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}
	lint.Print(os.Stdout, findings)
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// vetConfig is the subset of the JSON package unit `go vet` hands a vettool.
type vetConfig struct {
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
}

// runVetUnit analyzes one package unit described by a vet .cfg file,
// resolving imports from the export data go vet already built. Findings go
// to stderr and yield a non-zero exit, which go vet reports against the
// package.
func runVetUnit(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "xsketchlint: parsing %s: %v\n", path, err)
		return 2
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		file, ok := cfg.PackageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("xsketchlint: no export data for %q", importPath)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	tpkg, info, err := analysis.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsketchlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	findings := lint.RunOnPackage(pkg)
	lint.Print(os.Stderr, findings)
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// Command xsketchlint runs the repo's invariant analyzers (divguard,
// maporder, sketchmutate, nondeterminism, pkgdoc, atomicsnap, poolscratch,
// hotalloc, ctxflow, detachedmutate) over Go packages.
//
// Standalone use, from anywhere in the module:
//
//	go run ./cmd/xsketchlint ./...
//	go run ./cmd/xsketchlint -only pkgdoc ./...
//	go run ./cmd/xsketchlint -format sarif ./... > lint.sarif
//	go run ./cmd/xsketchlint -audit-suppressions ./...
//
// It exits 1 when unsuppressed findings exist, 0 when clean, and 2 when the
// tool itself failed (a package failed to load, a pattern matched nothing,
// or an analyzer returned an error) — so a broken run can never read as a
// clean one. -format selects text (file:line:col: message [analyzer]
// lines), json (an array of finding objects), or sarif (a SARIF 2.1.0 log
// with repo-relative paths, uploadable to code-scanning UIs).
// -audit-suppressions inverts the run: instead of findings it reports every
// //lint:allow directive that no longer suppresses anything. It also speaks
// enough of the vet tool protocol (-V=full plus *.cfg package units) to be
// used as
//
//	go vet -vettool=$(which xsketchlint) ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"xsketch/internal/lint"
	"xsketch/internal/lint/analysis"
)

func main() {
	// `go vet` first probes the tool with a bare -flags argument and wants
	// a JSON description of tool-specific flags on stdout. We define none.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	version := flag.String("V", "", "print version and exit (vet protocol)")
	only := flag.String("only", "", "comma-separated analyzer names to report (default: all)")
	format := flag.String("format", "text", "output format: text, json or sarif")
	audit := flag.Bool("audit-suppressions", false, "report stale //lint:allow directives instead of findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xsketchlint [-only analyzers] [-format text|json|sarif] [-audit-suppressions] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "xsketchlint: unknown -format %q (want text, json or sarif)\n", *format)
		os.Exit(2)
	}
	if *version != "" {
		// `go vet` probes the tool with -V=full and requires the line to
		// end in a buildID= field it can cache against; hash the binary so
		// rebuilding the tool invalidates cached vet results.
		if *version != "full" {
			fmt.Println("xsketchlint version devel")
			return
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sum := sha256.Sum256(data)
		fmt.Printf("xsketchlint version devel buildID=%02x\n", sum)
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run := lint.Run
	if *audit {
		run = lint.AuditSuppressions
	}
	findings, err := run(dir, args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *only != "" && !*audit {
		// Malformed-suppression findings (analyzer "lint") always survive
		// the filter: a broken directive must not hide behind -only.
		keep := map[string]bool{"lint": true}
		known := make(map[string]bool, len(lint.Analyzers))
		for _, a := range lint.Analyzers {
			known[a.Name] = true
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "xsketchlint: unknown analyzer %q in -only\n", name)
				os.Exit(2)
			}
			keep[name] = true
		}
		kept := findings[:0]
		for _, f := range findings {
			if keep[f.Analyzer] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}
	var werr error
	switch *format {
	case "json":
		werr = lint.PrintJSON(os.Stdout, findings)
	case "sarif":
		werr = lint.PrintSARIF(os.Stdout, dir, findings)
	default:
		lint.Print(os.Stdout, findings)
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		os.Exit(2)
	}
	code := 0
	for _, f := range findings {
		code = 1
		if f.Internal {
			code = 2
			break
		}
	}
	os.Exit(code)
}

// vetConfig is the subset of the JSON package unit `go vet` hands a vettool.
type vetConfig struct {
	Dir         string
	ImportPath  string
	ModulePath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
}

// runVetUnit analyzes one package unit described by a vet .cfg file,
// resolving imports from the export data go vet already built. Findings go
// to stderr and yield a non-zero exit, which go vet reports against the
// package.
func runVetUnit(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "xsketchlint: parsing %s: %v\n", path, err)
		return 2
	}
	// `go vet` hands the tool every dependency unit — including the
	// standard library — so fact-based analyzers can run modularly. This
	// suite keeps no facts and its rules are repo invariants, so analyzing
	// the stdlib would only spray pkgdoc findings over code we don't own.
	// Standard-library units are the ones outside any module.
	if cfg.ModulePath == "" {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}
	// External test packages (foo_test) consist entirely of _test.go files,
	// all filtered above; there is nothing left to analyze.
	if len(files) == 0 {
		return 0
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		file, ok := cfg.PackageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("xsketchlint: no export data for %q", importPath)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	tpkg, info, err := analysis.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsketchlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	findings := lint.RunOnPackage(pkg)
	lint.Print(os.Stderr, findings)
	if len(findings) > 0 {
		return 1
	}
	return 0
}

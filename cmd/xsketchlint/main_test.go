package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "xsketchlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = filepath.Join(repoRoot(t), "cmd", "xsketchlint")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tool: %v\n%s", err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = repoRoot(t)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running tool: %v", err)
	}
	return outBuf.String(), errBuf.String(), code
}

// TestExitCodes pins the 0/1/2 contract: clean run, findings, tool failure.
// The load-failure case is the regression test for the bug where a mistyped
// pattern silently analyzed zero packages and exited 0.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the tool")
	}
	bin := buildTool(t)

	_, stderr, code := runTool(t, bin, "./does/not/exist")
	if code != 2 {
		t.Errorf("nonexistent pattern: exit = %d, want 2 (stderr %q)", code, stderr)
	}
	if stderr == "" {
		t.Error("nonexistent pattern: want a loader error on stderr")
	}

	_, stderr, code = runTool(t, bin, "./does/not/exist/...")
	if code != 2 {
		t.Errorf("no-match pattern: exit = %d, want 2 (stderr %q)", code, stderr)
	}

	_, stderr, code = runTool(t, bin, "-format", "bogus", "./internal/plan/")
	if code != 2 {
		t.Errorf("unknown -format: exit = %d, want 2 (stderr %q)", code, stderr)
	}

	stdout, _, code := runTool(t, bin, "./internal/plan/")
	if code != 0 {
		t.Errorf("clean package: exit = %d, want 0 (stdout %q)", code, stdout)
	}
}

func TestSARIFOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the tool")
	}
	bin := buildTool(t)
	stdout, stderr, code := runTool(t, bin, "-format", "sarif", "./internal/plan/")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr %q)", code, stderr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version/runs = %q/%d, want 2.1.0/1", log.Version, len(log.Runs))
	}
	if log.Runs[0].Tool.Driver.Name != "xsketchlint" || len(log.Runs[0].Tool.Driver.Rules) == 0 {
		t.Error("SARIF run missing tool driver or rule table")
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("clean package produced %d SARIF results", len(log.Runs[0].Results))
	}
}

// TestVetToolSkipsStdlib is the regression test for vettool mode reporting
// pkgdoc findings against standard-library dependency units: `go vet` hands
// the tool every dependency's package unit, and units outside any module
// must be skipped, not analyzed.
func TestVetToolSkipsStdlib(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/plan/")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on a clean package: %v\n%s", err, out)
	}
}

func TestAuditSuppressionsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the tool")
	}
	bin := buildTool(t)
	stdout, stderr, code := runTool(t, bin, "-audit-suppressions", "./internal/plan/")
	if code != 0 {
		t.Fatalf("audit of directive-free package: exit = %d, want 0 (stdout %q stderr %q)", code, stdout, stderr)
	}
}

// Command xworkload generates a query workload over a document and dumps
// it as tab-separated rows (query, exact count, optional synopsis estimate
// and relative error), with summary statistics on stderr. Useful for
// inspecting what the paper-style P / P+V / simple / negative workloads
// look like and for offline analysis of estimation accuracy.
//
// Usage:
//
//	xworkload -dataset imdb -scale 0.1 -kind pv -n 100
//	xworkload -in doc.xml -kind simple -n 50 -estimate -budget 8192
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"

	"xsketch/internal/build"
	"xsketch/internal/cli"
	"xsketch/internal/metrics"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	"xsketch/internal/xsketch"
)

func main() {
	var (
		in       = flag.String("in", "", "input XML file ('-' for stdin)")
		dataset  = flag.String("dataset", "", "generate a dataset instead of reading XML")
		scale    = flag.Float64("scale", 0.1, "dataset scale when -dataset is used")
		kindName = flag.String("kind", "p", "workload kind: p, pv, simple, negative")
		n        = flag.Int("n", 100, "number of queries")
		seed     = flag.Int64("seed", 1, "random seed")
		estimate = flag.Bool("estimate", false, "also build a synopsis and report estimates")
		budget   = flag.Int("budget", 16*1024, "synopsis budget when -estimate is used")
		workers  = flag.Int("workers", 0, "estimation workers when -estimate is used (0 = GOMAXPROCS)")
		saveTo   = flag.String("o", "", "save the workload (replayable with workload.Load) to this file")
	)
	flag.Parse()

	kind, ok := map[string]workload.Kind{
		"p": workload.KindP, "pv": workload.KindPV,
		"simple": workload.KindSimple, "negative": workload.KindNegative,
	}[*kindName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kind %q (want p, pv, simple, negative)\n", *kindName)
		os.Exit(2)
	}
	doc, err := cli.LoadDoc(*in, *dataset, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := workload.DefaultConfig(kind)
	cfg.NumQueries = *n
	cfg.Seed = *seed
	w := workload.Generate(doc, cfg)

	var ests []xsketch.EstimateResult
	if *estimate {
		opts := build.DefaultOptions(*budget)
		opts.Seed = *seed
		sk := build.XBuild(doc, opts)
		fmt.Fprintf(os.Stderr, "synopsis: %d bytes, %d nodes\n", sk.SizeBytes(), sk.Syn.NumNodes())
		qs := make([]*twig.Query, len(w.Queries))
		for i, q := range w.Queries {
			qs[i] = q.Twig
		}
		ests = sk.EstimateBatch(qs, *workers)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	var results []metrics.Result
	for i, q := range w.Queries {
		if ests == nil {
			fmt.Fprintf(out, "%d\t%s\n", q.Truth, q.Twig)
			continue
		}
		est := ests[i].Estimate
		denom := math.Max(1, float64(q.Truth))
		fmt.Fprintf(out, "%d\t%.2f\t%.1f%%\t%s\n", q.Truth, est, 100*math.Abs(est-float64(q.Truth))/denom, q.Twig)
		results = append(results, metrics.Result{Truth: q.Truth, Estimate: est})
	}

	if *saveTo != "" {
		// Encode in memory and write atomically: a crash mid-save must not
		// leave a torn file that workload.Load later chokes on.
		var buf bytes.Buffer
		if err := workload.Save(&buf, w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := cli.WriteFileAtomic(*saveTo, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "saved workload to %s\n", *saveTo)
	}

	st := w.Stats()
	fmt.Fprintf(os.Stderr, "%d %s queries: avg result %.0f, avg fanout %.2f, avg nodes %.1f, %d with value predicates\n",
		st.Count, kind, st.AvgResult, st.AvgFanout, st.AvgNodes, st.WithValuePreds)
	if len(results) > 0 {
		fmt.Fprintf(os.Stderr, "estimation: %s\n", metrics.Evaluate(results, 0))
	}
}

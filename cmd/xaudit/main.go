// Command xaudit replays an accuracy audit log (the JSONL journal xserve
// writes under -audit-log) against a document and reports per-sketch
// estimate quality offline: mean/p50/p95/max q-error plus the worst
// queries. It shares the q-error definition and the exact evaluator with
// the online auditor, so its numbers match the live xserve_accuracy_*
// metrics bit-for-bit on the same records. See SERVING.md for the audit
// pipeline and DESIGN.md §15 for the design.
//
// Usage:
//
//	xaudit -log audit.jsonl -dataset imdb -scale 0.05
//	xaudit -log audit.jsonl -in doc.xml -sketch docs -format json
//
// The document must be the one the audited sketches summarized (same
// dataset, scale and seed, or the same XML file); ground truth is
// recomputed against it with internal/eval.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"xsketch/internal/accuracy"
	"xsketch/internal/cli"
)

// run is the command body, split from main so tests can drive it: it
// returns the process exit code and writes the report to stdout and
// errors to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xaudit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		logPath = fs.String("log", "", "audit JSONL log to replay (required; '-' for stdin)")
		in      = fs.String("in", "", "input XML file the sketches summarized ('-' for stdin)")
		dataset = fs.String("dataset", "", "generate a dataset instead of reading XML")
		scale   = fs.Float64("scale", 0.05, "dataset scale when -dataset is used")
		seed    = fs.Int64("seed", 1, "random seed for dataset generation")
		sketch  = fs.String("sketch", "", "only replay records served from this sketch")
		format  = fs.String("format", "text", "report format: json or text")
		topN    = fs.Int("top", 5, "worst queries listed per sketch (0 omits the list)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *logPath == "" {
		fmt.Fprintln(stderr, "-log is required")
		return 2
	}
	if *format != "json" && *format != "text" {
		fmt.Fprintf(stderr, "unknown -format %q (want json or text)\n", *format)
		return 2
	}
	if *topN < 0 {
		fmt.Fprintln(stderr, "-top must be non-negative")
		return 2
	}
	if *logPath == "-" && *in == "-" {
		fmt.Fprintln(stderr, "-log and -in cannot both read stdin")
		return 2
	}

	var logSrc io.Reader = os.Stdin
	if *logPath != "-" {
		f, err := os.Open(*logPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		logSrc = f
	}
	records, err := accuracy.ReadLog(logSrc)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *sketch != "" {
		kept := records[:0]
		for _, rec := range records {
			if rec.Sketch == *sketch {
				kept = append(kept, rec)
			}
		}
		records = kept
	}
	if len(records) == 0 {
		fmt.Fprintln(stderr, "no audit records to replay")
		return 1
	}

	doc, err := cli.LoadDoc(*in, *dataset, *scale, *seed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	rep, err := accuracy.Replay(records, doc, *topN)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	default:
		fmt.Fprint(stdout, rep.Text())
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

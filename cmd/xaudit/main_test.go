package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xsketch/internal/accuracy"
)

// writeLog writes records as a JSONL audit log under t.TempDir.
func writeLog(t *testing.T, records []accuracy.Record) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			t.Fatalf("encode record: %v", err)
		}
	}
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write log: %v", err)
	}
	return path
}

func testRecords() []accuracy.Record {
	return []accuracy.Record{
		{Sketch: "imdb", Query: "t0 in movie, t1 in t0/actor", Estimate: 10, TraceID: "a"},
		{Sketch: "imdb", Query: "t0 in movie/type", Estimate: 3, TraceID: "b"},
		{Sketch: "other", Query: "t0 in movie", Estimate: 1, TraceID: "c"},
	}
}

func TestRunTextReport(t *testing.T) {
	path := writeLog(t, testRecords())
	var out, errBuf bytes.Buffer
	code := run([]string{"-log", path, "-dataset", "imdb", "-scale", "0.02"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	text := out.String()
	if !strings.Contains(text, "replayed 3 audit records over 2 sketch(es)") {
		t.Errorf("missing header, got:\n%s", text)
	}
	for _, want := range []string{"imdb", "other", "worst queries for imdb:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q, got:\n%s", want, text)
		}
	}
}

func TestRunJSONReportAndSketchFilter(t *testing.T) {
	path := writeLog(t, testRecords())
	var out, errBuf bytes.Buffer
	code := run([]string{"-log", path, "-dataset", "imdb", "-scale", "0.02",
		"-sketch", "imdb", "-format", "json", "-top", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	var rep accuracy.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Records != 2 || len(rep.Sketches) != 1 || rep.Sketches[0].Sketch != "imdb" {
		t.Fatalf("filtered report shape: %+v", rep)
	}
	if len(rep.Sketches[0].Worst) != 1 {
		t.Errorf("-top 1 kept %d worst entries", len(rep.Sketches[0].Worst))
	}
	if rep.Sketches[0].MaxQError < 1 {
		t.Errorf("max q-error %v, want >= 1", rep.Sketches[0].MaxQError)
	}
}

func TestRunFlagErrors(t *testing.T) {
	path := writeLog(t, testRecords())
	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"missing log", []string{"-dataset", "imdb"}, 2, "-log is required"},
		{"bad format", []string{"-log", path, "-dataset", "imdb", "-format", "xml"}, 2, "unknown -format"},
		{"negative top", []string{"-log", path, "-dataset", "imdb", "-top", "-1"}, 2, "-top must be non-negative"},
		{"double stdin", []string{"-log", "-", "-in", "-"}, 2, "cannot both read stdin"},
		{"no matching records", []string{"-log", path, "-dataset", "imdb", "-sketch", "nope"}, 1, "no audit records"},
		{"unreadable log", []string{"-log", path + ".missing", "-dataset", "imdb"}, 1, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if code := run(tc.args, &out, &errBuf); code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, errBuf.String())
			}
			if !strings.Contains(errBuf.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errBuf.String(), tc.want)
			}
		})
	}
}

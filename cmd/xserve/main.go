// Command xserve is the networked estimation service: it loads (or
// builds) one or more Twig XSKETCH synopses at startup and serves twig
// selectivity estimates over HTTP, with Prometheus metrics, structured
// JSON logs and pprof built in. See SERVING.md for the full endpoint and
// metrics reference.
//
// Usage:
//
//	xserve -listen :8080 -sketch imdb
//	xserve -sketch imdb=dataset:imdb,scale=0.05,budget=16384 \
//	       -sketch docs=xml:doc.xml,synopsis=doc.sketch
//	xserve -catalog ./sketches
//
// Each repeatable -sketch flag is name=source[,key=value...]: the source
// is dataset:<xmark|imdb|sprot|parts>, xml:<file>, or synopsis:<file> (a
// standalone binary sketch written by `xbuild -o`, loaded with no
// document at all). The options are scale, seed, budget (build a synopsis
// with XBUILD) and synopsis (load a persisted one instead of building). A
// bare name is shorthand for a same-named dataset with default options.
// Paths may contain commas; an unquoted comma splits options only when
// the next token looks like key=value with a known key.
//
// -catalog DIR serves every *.xsb entry in DIR (each under its file
// name), again with no documents, and enables hot reloads: POST
// /admin/reload re-opens an entry and atomically swaps it in, as does
// SIGHUP for every catalog-backed sketch.
//
// Endpoints: POST /estimate, POST /estimate/batch, GET /sketches,
// POST /admin/reload, GET /healthz, GET /metrics, /debug/pprof (disable
// with -pprof=false). SIGINT/SIGTERM drains in-flight requests before
// exiting; SIGHUP hot-reloads from the catalog.
//
// With -router the binary instead becomes a stateless consistent-hash
// router in front of replica processes (see SCALING.md):
//
//	xserve -router -backend http://127.0.0.1:8081 -backend http://127.0.0.1:8082
//
// Router mode loads no sketches — -sketch and -catalog are rejected —
// and adds -probe-interval, -probe-timeout, -attempt-timeout and
// -retry-backoff. The router proxies /estimate and /estimate/batch
// shard-wise with one retry against the next ring candidate, probes
// backend /healthz endpoints in the background, and serves its own
// /healthz and xrouter_* /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"xsketch/internal/accuracy"
	"xsketch/internal/build"
	"xsketch/internal/catalog"
	"xsketch/internal/cli"
	"xsketch/internal/obs"
	"xsketch/internal/router"
	"xsketch/internal/serve"
	core "xsketch/internal/xsketch"
)

// backendFlags collects repeated -backend values.
type backendFlags []string

func (f *backendFlags) String() string { return strings.Join(*f, ",") }

func (f *backendFlags) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty backend URL")
	}
	*f = append(*f, v)
	return nil
}

// validateRouterFlags checks the flag combinations that select router
// mode: backends are required, and sketch-loading flags are meaningless
// there (the router holds no sketches) so they are rejected loudly
// rather than silently ignored.
func validateRouterFlags(routerOn bool, backends []string, sketchFlags int, catalogDir string) error {
	if !routerOn {
		if len(backends) > 0 {
			return fmt.Errorf("-backend requires -router")
		}
		return nil
	}
	if len(backends) == 0 {
		return fmt.Errorf("-router requires at least one -backend URL")
	}
	if sketchFlags > 0 {
		return fmt.Errorf("-sketch cannot be combined with -router: the router loads no sketches")
	}
	if catalogDir != "" {
		return fmt.Errorf("-catalog cannot be combined with -router: the router loads no sketches")
	}
	return nil
}

// auditSatellites are the -audit-* flags that tune the accuracy auditor;
// each is meaningless without -audit-log, so setting one while auditing
// is off fails loudly rather than being silently ignored.
var auditSatellites = []string{
	"audit-rate", "audit-queue", "audit-truth-interval",
	"audit-window", "audit-drift-threshold",
}

// validateAuditFlags checks the -audit-* flag combinations: auditing is a
// replica-mode feature (the router serves no estimates of its own), every
// satellite flag requires -audit-log, and the sample rate must be a
// probability.
func validateAuditFlags(routerOn bool, set map[string]bool, logPath string, rate float64) error {
	if routerOn {
		if set["audit-log"] {
			return fmt.Errorf("-audit-log cannot be combined with -router: the router serves no estimates to audit")
		}
		for _, name := range auditSatellites {
			if set[name] {
				return fmt.Errorf("-%s cannot be combined with -router: the router serves no estimates to audit", name)
			}
		}
		return nil
	}
	if logPath == "" {
		for _, name := range auditSatellites {
			if set[name] {
				return fmt.Errorf("-%s requires -audit-log", name)
			}
		}
		return nil
	}
	if !(rate >= 0 && rate <= 1) {
		return fmt.Errorf("-audit-rate must be in [0, 1], got %g", rate)
	}
	return nil
}

// sketchSpec is one parsed -sketch flag.
type sketchSpec struct {
	name       string
	dataset    string // dataset:<name> source
	xmlPath    string // xml:<path> source
	standalone string // synopsis:<path> source (binary catalog file, no document)
	scale      float64
	seed       int64
	budget     int
	synopsis   string // load instead of build when set
}

// sketchFlags collects repeated -sketch values.
type sketchFlags []sketchSpec

func (f *sketchFlags) String() string {
	names := make([]string, len(*f))
	for i, s := range *f {
		names[i] = s.name
	}
	return strings.Join(names, ",")
}

func (f *sketchFlags) Set(v string) error {
	spec, err := parseSketchSpec(v)
	if err != nil {
		return err
	}
	*f = append(*f, spec)
	return nil
}

// specOptionKeys are the option names the spec grammar knows. A comma
// starts a new option only when the token after it is one of these keys
// followed by '='; any other comma belongs to the preceding value, so
// xml: and synopsis= paths containing commas parse without quoting.
var specOptionKeys = map[string]bool{
	"scale":    true,
	"seed":     true,
	"budget":   true,
	"synopsis": true,
}

// splitSpec tokenizes source[,key=value...] comma-safely: tokens that do
// not look like a known option are re-joined onto the previous value.
func splitSpec(rest string) []string {
	raw := strings.Split(rest, ",")
	parts := raw[:1]
	for _, tok := range raw[1:] {
		k, _, ok := strings.Cut(tok, "=")
		if ok && specOptionKeys[k] {
			parts = append(parts, tok)
		} else {
			parts[len(parts)-1] += "," + tok
		}
	}
	return parts
}

// parseSketchSpec parses name=source[,key=value...]; a bare name is
// shorthand for name=dataset:name.
func parseSketchSpec(v string) (sketchSpec, error) {
	spec := sketchSpec{scale: 0.05, seed: 1, budget: 16 * 1024}
	name, rest, ok := strings.Cut(v, "=")
	if name == "" {
		return spec, fmt.Errorf("sketch spec %q: empty name", v)
	}
	spec.name = name
	if !ok {
		spec.dataset = name
		return spec, nil
	}
	parts := splitSpec(rest)
	switch {
	case strings.HasPrefix(parts[0], "dataset:"):
		spec.dataset = strings.TrimPrefix(parts[0], "dataset:")
		if strings.Contains(spec.dataset, ",") {
			// Dataset names never contain commas, so one here means an
			// option token that isn't in the grammar.
			return spec, fmt.Errorf("sketch spec %q: %q is not a dataset name — unknown option after the comma?", v, spec.dataset)
		}
	case strings.HasPrefix(parts[0], "xml:"):
		spec.xmlPath = strings.TrimPrefix(parts[0], "xml:")
	case strings.HasPrefix(parts[0], "synopsis:"):
		spec.standalone = strings.TrimPrefix(parts[0], "synopsis:")
		if spec.standalone == "" {
			return spec, fmt.Errorf("sketch spec %q: empty synopsis path", v)
		}
	default:
		return spec, fmt.Errorf("sketch spec %q: source must be dataset:<name>, xml:<path> or synopsis:<path>", v)
	}
	for _, p := range parts[1:] {
		k, val, ok := strings.Cut(p, "=")
		if !ok {
			return spec, fmt.Errorf("sketch spec %q: option %q is not key=value", v, p)
		}
		var err error
		switch k {
		case "scale":
			spec.scale, err = strconv.ParseFloat(val, 64)
		case "seed":
			spec.seed, err = strconv.ParseInt(val, 10, 64)
		case "budget":
			spec.budget, err = strconv.Atoi(val)
		case "synopsis":
			spec.synopsis = val
		default:
			return spec, fmt.Errorf("sketch spec %q: unknown option %q", v, k)
		}
		if err != nil {
			return spec, fmt.Errorf("sketch spec %q: option %q: %v", v, p, err)
		}
	}
	if spec.standalone != "" && (spec.synopsis != "" || len(parts) > 1) {
		return spec, fmt.Errorf("sketch spec %q: a synopsis:<path> source takes no options", v)
	}
	if spec.scale <= 0 {
		return spec, fmt.Errorf("sketch spec %q: scale must be positive, got %g", v, spec.scale)
	}
	if spec.budget <= 0 {
		return spec, fmt.Errorf("sketch spec %q: budget must be positive, got %d", v, spec.budget)
	}
	if spec.seed < 0 {
		return spec, fmt.Errorf("sketch spec %q: seed must be non-negative, got %d", v, spec.seed)
	}
	return spec, nil
}

// loadSketch materializes one spec: a standalone binary synopsis loads
// directly (no document); otherwise the document is generated or parsed,
// then the synopsis is built with XBUILD or loaded from a persisted file
// (binary catalog files load detached even here — only the legacy gob
// form replays against the document).
func loadSketch(spec sketchSpec, logger *obs.Logger) (serve.Sketch, error) {
	var (
		sk     *core.Sketch
		source string
	)
	switch {
	case spec.standalone != "":
		loaded, info, err := catalog.Open(spec.standalone)
		if err != nil {
			return serve.Sketch{}, fmt.Errorf("sketch %s: %v", spec.name, err)
		}
		sk = loaded
		source = fmt.Sprintf("synopsis:%s (standalone, %d elements summarized)", spec.standalone, info.Elements)
	case spec.synopsis != "":
		binary, err := catalog.SniffFile(spec.synopsis)
		if err != nil {
			return serve.Sketch{}, fmt.Errorf("sketch %s: %v", spec.name, err)
		}
		if binary {
			loaded, _, err := catalog.Open(spec.synopsis)
			if err != nil {
				return serve.Sketch{}, fmt.Errorf("sketch %s: %v", spec.name, err)
			}
			sk = loaded
			source = fmt.Sprintf("synopsis:%s (standalone)", spec.synopsis)
			break
		}
		doc, err := cli.LoadDoc(spec.xmlPath, spec.dataset, spec.scale, spec.seed)
		if err != nil {
			return serve.Sketch{}, fmt.Errorf("sketch %s: %v", spec.name, err)
		}
		f, err := os.Open(spec.synopsis)
		if err != nil {
			return serve.Sketch{}, fmt.Errorf("sketch %s: %v", spec.name, err)
		}
		sk, err = core.Load(f, doc)
		f.Close()
		if err != nil {
			return serve.Sketch{}, fmt.Errorf("sketch %s: loading synopsis: %v", spec.name, err)
		}
		source = fmt.Sprintf("synopsis:%s", spec.synopsis)
	default:
		doc, err := cli.LoadDoc(spec.xmlPath, spec.dataset, spec.scale, spec.seed)
		if err != nil {
			return serve.Sketch{}, fmt.Errorf("sketch %s: %v", spec.name, err)
		}
		opts := build.DefaultOptions(spec.budget)
		opts.Seed = spec.seed
		sk = build.XBuild(doc, opts)
		source = fmt.Sprintf("budget=%d seed=%d", spec.budget, spec.seed)
	}
	switch {
	case spec.standalone != "":
		// source already complete
	case spec.dataset != "":
		source = fmt.Sprintf("dataset:%s scale=%g %s", spec.dataset, spec.scale, source)
	case spec.xmlPath != "":
		source = fmt.Sprintf("xml:%s %s", spec.xmlPath, source)
	}
	logger.Info("sketch loaded",
		"sketch", spec.name,
		"source", source,
		"nodes", sk.Syn.NumNodes(),
		"edges", sk.Syn.NumEdges(),
		"size_bytes", sk.SizeBytes(),
	)
	return serve.Sketch{Name: spec.name, Source: source, Sketch: sk}, nil
}

// loadCatalog opens every entry of a catalog directory, failing on
// corrupt entries (a serving replica should not silently come up with a
// partial catalog).
func loadCatalog(dir string, logger *obs.Logger) ([]serve.Sketch, error) {
	infos, err := catalog.Scan(dir)
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("catalog %s holds no %s entries", dir, catalog.Ext)
	}
	out := make([]serve.Sketch, 0, len(infos))
	for _, info := range infos {
		if info.Err != nil {
			return nil, fmt.Errorf("catalog entry %s: %v", info.Path, info.Err)
		}
		sk, _, err := catalog.Open(info.Path)
		if err != nil {
			return nil, fmt.Errorf("catalog entry %s: %v", info.Path, err)
		}
		logger.Info("sketch loaded",
			"sketch", info.Name,
			"source", "catalog:"+info.Path,
			"nodes", sk.Syn.NumNodes(),
			"edges", sk.Syn.NumEdges(),
			"size_bytes", sk.SizeBytes(),
		)
		out = append(out, serve.Sketch{Name: info.Name, Source: "catalog:" + info.Path, Sketch: sk})
	}
	return out, nil
}

func main() {
	var sketches sketchFlags
	var backends backendFlags
	var (
		routerMode     = flag.Bool("router", false, "run as a consistent-hash router over -backend replicas instead of serving sketches")
		probeInterval  = flag.Duration("probe-interval", time.Second, "router: backend health-probe period")
		probeTimeout   = flag.Duration("probe-timeout", 2*time.Second, "router: per-probe timeout")
		attemptTimeout = flag.Duration("attempt-timeout", 15*time.Second, "router: per-proxy-attempt timeout")
		retryBackoff   = flag.Duration("retry-backoff", 25*time.Millisecond, "router: pause before retrying on the next ring candidate")
	)
	var (
		listen        = flag.String("listen", ":8080", "address to serve on")
		catalogDir    = flag.String("catalog", "", "sketch catalog directory: serve every *.xsb entry and enable /admin/reload + SIGHUP hot swaps")
		timeout       = flag.Duration("timeout", 10*time.Second, "per-request estimation timeout")
		maxConcurrent = flag.Int("max-concurrent", 0, "estimate requests admitted at once before shedding with 429 (0 = 2*GOMAXPROCS)")
		maxBody       = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		maxBatch      = flag.Int("max-batch", 4096, "max queries per batch request")
		workers       = flag.Int("workers", 0, "batch estimation workers (0 = GOMAXPROCS)")
		pprofOn       = flag.Bool("pprof", true, "mount /debug/pprof")
		planCache     = flag.Bool("plan-cache", true, "serve estimates from per-sketch compiled-plan caches (bit-identical to the interpreter)")
		planCacheSize = flag.Int("plan-cache-size", core.DefaultPlanCacheSize, "compiled plans retained per sketch")
		logMode       = flag.String("log", "json", "request logging: json (stderr) or off")
		drainTimeout  = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain limit")
	)
	var (
		auditLog       = flag.String("audit-log", "", "enable accuracy auditing: append sampled estimates to this JSONL journal (replayable with xaudit)")
		auditRate      = flag.Float64("audit-rate", 0.01, "fraction of estimates sampled into the audit (deterministic per trace ID, 0..1)")
		auditQueue     = flag.Int("audit-queue", 0, "audit journal queue depth before sampled records drop (0 = default)")
		auditTruthPace = flag.Duration("audit-truth-interval", 0, "minimum pause between ground-truth evaluations (0 = default pacing, negative = unpaced)")
		auditWindow    = flag.Int("audit-window", 0, "q-error sliding-window size per sketch (0 = default)")
		auditDrift     = flag.Float64("audit-drift-threshold", 0, "windowed mean q-error above which drift fires (0 disables drift detection)")
	)
	flag.Var(&sketches, "sketch", "sketch to serve: name=dataset:<name>|xml:<path>|synopsis:<file>[,scale=F][,seed=N][,budget=N][,synopsis=FILE] (repeatable; bare NAME = dataset shorthand)")
	flag.Var(&backends, "backend", "router: backend replica base URL (repeatable, requires -router)")
	flag.Parse()

	var logger *obs.Logger
	switch *logMode {
	case "json":
		logger = obs.NewLogger(os.Stderr, "component", "xserve")
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "-log must be json or off, got %q\n", *logMode)
		os.Exit(2)
	}

	if err := validateRouterFlags(*routerMode, backends, len(sketches), *catalogDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if err := validateAuditFlags(*routerMode, setFlags, *auditLog, *auditRate); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *routerMode {
		os.Exit(runRouter(router.Config{
			AttemptTimeout:  *attemptTimeout,
			RetryBackoff:    *retryBackoff,
			ProbeInterval:   *probeInterval,
			ProbeTimeout:    *probeTimeout,
			MaxBodyBytes:    *maxBody,
			MaxBatchQueries: *maxBatch,
			Logger:          logger,
		}, backends, *listen, *drainTimeout, logger))
	}

	if len(sketches) == 0 && *catalogDir == "" {
		fmt.Fprintln(os.Stderr, "at least one -sketch (or a -catalog directory) is required, e.g. -sketch imdb")
		os.Exit(2)
	}
	var served []serve.Sketch
	if *catalogDir != "" {
		fromCatalog, err := loadCatalog(*catalogDir, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		served = fromCatalog
	}
	for _, spec := range sketches {
		sk, err := loadSketch(spec, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		served = append(served, sk)
	}
	for i := range served {
		if *planCache {
			//lint:allow sketchmutate startup configuration before the sketch is shared, not a histogram mutation
			served[i].Sketch.Cfg.PlanCacheSize = *planCacheSize
		} else {
			//lint:allow sketchmutate startup configuration before the sketch is shared, not a histogram mutation
			served[i].Sketch.Cfg.PlanCacheSize = -1
		}
	}

	var auditFile *os.File
	var auditCfg *accuracy.Config
	if *auditLog != "" {
		f, err := os.OpenFile(*auditLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opening -audit-log:", err)
			os.Exit(1)
		}
		auditFile = f
		auditCfg = &accuracy.Config{
			SampleRate:     *auditRate,
			Out:            auditFile,
			QueueSize:      *auditQueue,
			TruthInterval:  *auditTruthPace,
			WindowSize:     *auditWindow,
			DriftThreshold: *auditDrift,
		}
		logger.Info("accuracy auditing enabled",
			"log", *auditLog, "rate", *auditRate, "drift_threshold", *auditDrift)
	}

	s, err := serve.New(serve.Config{
		MaxConcurrent:   *maxConcurrent,
		RequestTimeout:  *timeout,
		MaxBodyBytes:    *maxBody,
		MaxBatchQueries: *maxBatch,
		BatchWorkers:    *workers,
		DisablePlanner:  !*planCache,
		EnablePprof:     *pprofOn,
		CatalogDir:      *catalogDir,
		Logger:          logger,
		Audit:           auditCfg,
	}, served)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *listen, "sketches", s.Names())
	fmt.Fprintf(os.Stderr, "xserve listening on %s, serving %v\n", *listen, s.Names())

serveLoop:
	for {
		select {
		case err := <-errc:
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		case <-hup:
			// Hot-reload every served name present in the catalog; names
			// without a catalog entry (or with a corrupt one) keep serving
			// their current synopsis.
			if *catalogDir == "" {
				logger.Info("SIGHUP ignored", "reason", "no -catalog directory")
				continue
			}
			for _, name := range s.Names() {
				if _, err := s.ReloadFromCatalog(name, ""); err != nil {
					logger.Error("reload failed", "sketch", name, "error", err.Error())
				}
			}
		case <-ctx.Done():
			break serveLoop
		}
	}
	// Graceful drain: stop advertising healthy, then let in-flight
	// estimates finish under the drain budget.
	s.SetDraining(true)
	logger.Info("draining", "timeout", drainTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		os.Exit(1)
	}
	// The auditor closes after the HTTP drain so every admitted request's
	// sample reaches the journal before the file does.
	if aud := s.Auditor(); aud != nil {
		aud.Close()
		if err := auditFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "closing -audit-log:", err)
			os.Exit(1)
		}
	}
	logger.Info("stopped")
}

// runRouter is router mode's main loop: build the ring, settle initial
// backend states with one synchronous probe round, serve, and drain
// gracefully on SIGINT/SIGTERM. Returns the process exit code.
func runRouter(cfg router.Config, backends []string, listen string, drainTimeout time.Duration, logger *obs.Logger) int {
	rt, err := router.New(cfg, backends)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// One synchronous probe round before taking traffic, so a dead
	// backend is already routed around at the first request.
	rt.ProbeOnce(ctx)
	stopProbing := rt.StartProbing()
	defer stopProbing()

	httpSrv := &http.Server{
		Addr:              listen,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("router listening", "addr", listen, "backends", strings.Join(rt.Backends(), ","))
	fmt.Fprintf(os.Stderr, "xserve router listening on %s, backends %v\n", listen, rt.Backends())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-ctx.Done():
	}
	// Graceful drain, same contract as replica mode: flip /healthz to 503
	// (with draining:true) first so upstream load balancers stop sending
	// new work, then let in-flight proxies finish.
	rt.SetDraining(true)
	logger.Info("draining", "timeout", drainTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		return 1
	}
	logger.Info("stopped")
	return 0
}

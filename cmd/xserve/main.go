// Command xserve is the networked estimation service: it loads (or
// builds) one or more Twig XSKETCH synopses at startup and serves twig
// selectivity estimates over HTTP, with Prometheus metrics, structured
// JSON logs and pprof built in. See SERVING.md for the full endpoint and
// metrics reference.
//
// Usage:
//
//	xserve -listen :8080 -sketch imdb
//	xserve -sketch imdb=dataset:imdb,scale=0.05,budget=16384 \
//	       -sketch docs=xml:doc.xml,synopsis=doc.sketch
//
// Each repeatable -sketch flag is name=source[,key=value...]: the source
// is dataset:<xmark|imdb|sprot|parts> or xml:<file>, the options are
// scale, seed, budget (build a synopsis with XBUILD) and synopsis (load
// one persisted by `xbuild -o` instead of building). A bare name is
// shorthand for a same-named dataset with default options.
//
// Endpoints: POST /estimate, POST /estimate/batch, GET /sketches,
// GET /healthz, GET /metrics, /debug/pprof (disable with -pprof=false).
// SIGINT/SIGTERM drains in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"xsketch/internal/build"
	"xsketch/internal/cli"
	"xsketch/internal/obs"
	"xsketch/internal/serve"
	core "xsketch/internal/xsketch"
)

// sketchSpec is one parsed -sketch flag.
type sketchSpec struct {
	name     string
	dataset  string // dataset:<name> source
	xmlPath  string // xml:<path> source
	scale    float64
	seed     int64
	budget   int
	synopsis string // load instead of build when set
}

// sketchFlags collects repeated -sketch values.
type sketchFlags []sketchSpec

func (f *sketchFlags) String() string {
	names := make([]string, len(*f))
	for i, s := range *f {
		names[i] = s.name
	}
	return strings.Join(names, ",")
}

func (f *sketchFlags) Set(v string) error {
	spec, err := parseSketchSpec(v)
	if err != nil {
		return err
	}
	*f = append(*f, spec)
	return nil
}

// parseSketchSpec parses name=source[,key=value...]; a bare name is
// shorthand for name=dataset:name.
func parseSketchSpec(v string) (sketchSpec, error) {
	spec := sketchSpec{scale: 0.05, seed: 1, budget: 16 * 1024}
	name, rest, ok := strings.Cut(v, "=")
	if name == "" {
		return spec, fmt.Errorf("sketch spec %q: empty name", v)
	}
	spec.name = name
	if !ok {
		spec.dataset = name
		return spec, nil
	}
	parts := strings.Split(rest, ",")
	switch {
	case strings.HasPrefix(parts[0], "dataset:"):
		spec.dataset = strings.TrimPrefix(parts[0], "dataset:")
	case strings.HasPrefix(parts[0], "xml:"):
		spec.xmlPath = strings.TrimPrefix(parts[0], "xml:")
	default:
		return spec, fmt.Errorf("sketch spec %q: source must be dataset:<name> or xml:<path>", v)
	}
	for _, p := range parts[1:] {
		k, val, ok := strings.Cut(p, "=")
		if !ok {
			return spec, fmt.Errorf("sketch spec %q: option %q is not key=value", v, p)
		}
		var err error
		switch k {
		case "scale":
			spec.scale, err = strconv.ParseFloat(val, 64)
		case "seed":
			spec.seed, err = strconv.ParseInt(val, 10, 64)
		case "budget":
			spec.budget, err = strconv.Atoi(val)
		case "synopsis":
			spec.synopsis = val
		default:
			return spec, fmt.Errorf("sketch spec %q: unknown option %q", v, k)
		}
		if err != nil {
			return spec, fmt.Errorf("sketch spec %q: option %q: %v", v, p, err)
		}
	}
	return spec, nil
}

// loadSketch materializes one spec: generate or parse the document, then
// build with XBUILD or load a persisted synopsis bound to it.
func loadSketch(spec sketchSpec, logger *obs.Logger) (serve.Sketch, error) {
	doc, err := cli.LoadDoc(spec.xmlPath, spec.dataset, spec.scale, spec.seed)
	if err != nil {
		return serve.Sketch{}, fmt.Errorf("sketch %s: %v", spec.name, err)
	}
	var sk *core.Sketch
	source := ""
	if spec.synopsis != "" {
		f, err := os.Open(spec.synopsis)
		if err != nil {
			return serve.Sketch{}, fmt.Errorf("sketch %s: %v", spec.name, err)
		}
		sk, err = core.Load(f, doc)
		f.Close()
		if err != nil {
			return serve.Sketch{}, fmt.Errorf("sketch %s: loading synopsis: %v", spec.name, err)
		}
		source = fmt.Sprintf("synopsis:%s", spec.synopsis)
	} else {
		opts := build.DefaultOptions(spec.budget)
		opts.Seed = spec.seed
		sk = build.XBuild(doc, opts)
		source = fmt.Sprintf("budget=%d seed=%d", spec.budget, spec.seed)
	}
	if spec.dataset != "" {
		source = fmt.Sprintf("dataset:%s scale=%g %s", spec.dataset, spec.scale, source)
	} else {
		source = fmt.Sprintf("xml:%s %s", spec.xmlPath, source)
	}
	logger.Info("sketch loaded",
		"sketch", spec.name,
		"source", source,
		"nodes", sk.Syn.NumNodes(),
		"edges", sk.Syn.NumEdges(),
		"size_bytes", sk.SizeBytes(),
	)
	return serve.Sketch{Name: spec.name, Source: source, Sketch: sk}, nil
}

func main() {
	var sketches sketchFlags
	var (
		listen        = flag.String("listen", ":8080", "address to serve on")
		timeout       = flag.Duration("timeout", 10*time.Second, "per-request estimation timeout")
		maxConcurrent = flag.Int("max-concurrent", 0, "estimate requests admitted at once before shedding with 429 (0 = 2*GOMAXPROCS)")
		maxBody       = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		maxBatch      = flag.Int("max-batch", 4096, "max queries per batch request")
		workers       = flag.Int("workers", 0, "batch estimation workers (0 = GOMAXPROCS)")
		pprofOn       = flag.Bool("pprof", true, "mount /debug/pprof")
		planCache     = flag.Bool("plan-cache", true, "serve estimates from per-sketch compiled-plan caches (bit-identical to the interpreter)")
		planCacheSize = flag.Int("plan-cache-size", core.DefaultPlanCacheSize, "compiled plans retained per sketch")
		logMode       = flag.String("log", "json", "request logging: json (stderr) or off")
		drainTimeout  = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain limit")
	)
	flag.Var(&sketches, "sketch", "sketch to serve: name=dataset:<name>|xml:<path>[,scale=F][,seed=N][,budget=N][,synopsis=FILE] (repeatable; bare NAME = dataset shorthand)")
	flag.Parse()

	var logger *obs.Logger
	switch *logMode {
	case "json":
		logger = obs.NewLogger(os.Stderr, "component", "xserve")
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "-log must be json or off, got %q\n", *logMode)
		os.Exit(2)
	}

	if len(sketches) == 0 {
		fmt.Fprintln(os.Stderr, "at least one -sketch is required, e.g. -sketch imdb")
		os.Exit(2)
	}
	served := make([]serve.Sketch, len(sketches))
	for i, spec := range sketches {
		sk, err := loadSketch(spec, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *planCache {
			//lint:allow sketchmutate startup configuration before the sketch is shared, not a histogram mutation
			sk.Sketch.Cfg.PlanCacheSize = *planCacheSize
		} else {
			//lint:allow sketchmutate startup configuration before the sketch is shared, not a histogram mutation
			sk.Sketch.Cfg.PlanCacheSize = -1
		}
		served[i] = sk
	}

	s, err := serve.New(serve.Config{
		MaxConcurrent:   *maxConcurrent,
		RequestTimeout:  *timeout,
		MaxBodyBytes:    *maxBody,
		MaxBatchQueries: *maxBatch,
		BatchWorkers:    *workers,
		DisablePlanner:  !*planCache,
		EnablePprof:     *pprofOn,
		Logger:          logger,
	}, served)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *listen, "sketches", s.Names())
	fmt.Fprintf(os.Stderr, "xserve listening on %s, serving %v\n", *listen, s.Names())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Graceful drain: stop advertising healthy, then let in-flight
	// estimates finish under the drain budget.
	s.SetDraining(true)
	logger.Info("draining", "timeout", drainTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		os.Exit(1)
	}
	logger.Info("stopped")
}

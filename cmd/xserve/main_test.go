package main

import (
	"strings"
	"testing"
)

// TestParseSketchSpec covers the spec grammar, including the regression
// cases: paths containing commas (which a naive comma split tore apart)
// and out-of-range scale/budget/seed values (which used to be accepted
// silently and fail much later, inside the generator or XBUILD).
func TestParseSketchSpec(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    sketchSpec
		wantErr string
	}{
		{
			name: "bare name is dataset shorthand",
			in:   "imdb",
			want: sketchSpec{name: "imdb", dataset: "imdb", scale: 0.05, seed: 1, budget: 16384},
		},
		{
			name: "dataset with options",
			in:   "m=dataset:imdb,scale=0.02,seed=7,budget=8192",
			want: sketchSpec{name: "m", dataset: "imdb", scale: 0.02, seed: 7, budget: 8192},
		},
		{
			name: "xml source",
			in:   "docs=xml:/data/docs.xml",
			want: sketchSpec{name: "docs", xmlPath: "/data/docs.xml", scale: 0.05, seed: 1, budget: 16384},
		},
		{
			name: "xml path containing commas",
			in:   "docs=xml:/data/a,b,c.xml,budget=4096",
			want: sketchSpec{name: "docs", xmlPath: "/data/a,b,c.xml", scale: 0.05, seed: 1, budget: 4096},
		},
		{
			name: "synopsis option path containing commas",
			in:   "m=dataset:imdb,synopsis=/tmp/snap,v2,final.sketch",
			want: sketchSpec{name: "m", dataset: "imdb", scale: 0.05, seed: 1, budget: 16384,
				synopsis: "/tmp/snap,v2,final.sketch"},
		},
		{
			name: "comma before a known key still splits",
			in:   "m=dataset:imdb,synopsis=/tmp/a,b.sketch,seed=3",
			want: sketchSpec{name: "m", dataset: "imdb", scale: 0.05, seed: 3, budget: 16384,
				synopsis: "/tmp/a,b.sketch"},
		},
		{
			name: "standalone synopsis source",
			in:   "m=synopsis:/var/sketches/imdb.xsb",
			want: sketchSpec{name: "m", standalone: "/var/sketches/imdb.xsb", scale: 0.05, seed: 1, budget: 16384},
		},
		{
			name: "standalone synopsis source with commas in path",
			in:   "m=synopsis:/var/a,b.xsb",
			want: sketchSpec{name: "m", standalone: "/var/a,b.xsb", scale: 0.05, seed: 1, budget: 16384},
		},
		{name: "empty name", in: "=dataset:imdb", wantErr: "empty name"},
		{name: "unknown source", in: "m=file:/x", wantErr: "source must be"},
		{name: "empty synopsis path", in: "m=synopsis:", wantErr: "empty synopsis path"},
		{name: "standalone rejects options", in: "m=synopsis:/a.xsb,budget=1", wantErr: "takes no options"},
		{name: "unknown option merges into dataset and is rejected", in: "m=dataset:imdb,depth=3", wantErr: "unknown option after the comma"},
		{name: "malformed float", in: "m=dataset:imdb,scale=big", wantErr: "invalid syntax"},
		{name: "zero scale rejected", in: "m=dataset:imdb,scale=0", wantErr: "scale must be positive"},
		{name: "negative scale rejected", in: "m=dataset:imdb,scale=-0.5", wantErr: "scale must be positive"},
		{name: "zero budget rejected", in: "m=dataset:imdb,budget=0", wantErr: "budget must be positive"},
		{name: "negative budget rejected", in: "m=dataset:imdb,budget=-1", wantErr: "budget must be positive"},
		{name: "negative seed rejected", in: "m=dataset:imdb,seed=-4", wantErr: "seed must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseSketchSpec(tc.in)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseSketchSpec(%q) = %+v, want error containing %q", tc.in, got, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseSketchSpec(%q) error %q, want it to contain %q", tc.in, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseSketchSpec(%q): %v", tc.in, err)
			}
			if got != tc.want {
				t.Fatalf("parseSketchSpec(%q)\n got %+v\nwant %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestValidateRouterFlags(t *testing.T) {
	cases := []struct {
		name     string
		routerOn bool
		backends []string
		sketches int
		catalog  string
		wantErr  string
	}{
		{name: "replica mode, no router flags", routerOn: false},
		{name: "backend without router", backends: []string{"http://a"}, wantErr: "-backend requires -router"},
		{name: "router without backends", routerOn: true, wantErr: "at least one -backend"},
		{name: "router with one backend", routerOn: true, backends: []string{"http://a"}},
		{name: "router with several backends", routerOn: true, backends: []string{"http://a", "http://b"}},
		{name: "router rejects -sketch", routerOn: true, backends: []string{"http://a"}, sketches: 1, wantErr: "-sketch cannot be combined"},
		{name: "router rejects -catalog", routerOn: true, backends: []string{"http://a"}, catalog: "./sketches", wantErr: "-catalog cannot be combined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateRouterFlags(tc.routerOn, tc.backends, tc.sketches, tc.catalog)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateAuditFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool)
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name     string
		routerOn bool
		set      map[string]bool
		logPath  string
		rate     float64
		wantErr  string
	}{
		{name: "auditing off, nothing set", set: set(), rate: 0.01},
		{name: "auditing on with satellites", set: set("audit-log", "audit-rate", "audit-window"), logPath: "a.jsonl", rate: 0.5},
		{name: "rate 0 and 1 are valid", set: set("audit-log"), logPath: "a.jsonl", rate: 1},
		{name: "satellite without log", set: set("audit-rate"), rate: 0.5, wantErr: "-audit-rate requires -audit-log"},
		{name: "drift threshold without log", set: set("audit-drift-threshold"), rate: 0.01, wantErr: "-audit-drift-threshold requires -audit-log"},
		{name: "router rejects audit log", routerOn: true, set: set("audit-log"), logPath: "a.jsonl", rate: 0.01, wantErr: "-audit-log cannot be combined with -router"},
		{name: "router rejects satellites", routerOn: true, set: set("audit-queue"), rate: 0.01, wantErr: "-audit-queue cannot be combined with -router"},
		{name: "rate above one", set: set("audit-log"), logPath: "a.jsonl", rate: 1.5, wantErr: "must be in [0, 1]"},
		{name: "negative rate", set: set("audit-log"), logPath: "a.jsonl", rate: -0.1, wantErr: "must be in [0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateAuditFlags(tc.routerOn, tc.set, tc.logPath, tc.rate)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestBackendFlagsSet(t *testing.T) {
	var f backendFlags
	if err := f.Set("http://a"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := f.Set("http://b"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := f.Set(""); err == nil {
		t.Fatal("empty backend accepted")
	}
	if got := f.String(); got != "http://a,http://b" {
		t.Errorf("String() = %q", got)
	}
}
